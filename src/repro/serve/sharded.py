"""Sharded execution: N partitioned engines behind one engine facade.

A single :class:`~repro.core.engine.MaxBRSTkNNEngine` is the
scalability ceiling of the serving stack: however fast the kernels,
every query's O(|U|) phases — Algorithm 2 refinement and Algorithm 3's
per-user shortlist — walk the whole user set in one process.  Because
both phases are *per-user* computations against shared global state,
the user set partitions cleanly:

* **scatter** — each shard (a full ``MaxBRSTkNNEngine`` over a
  user-subset dataset sharing the root's object MIR-tree) refines
  ``RSk(u)`` for its users against the one globally shared traversal
  pool, and shortlists its users at every surviving candidate location;
* **gather** — per-shard partials merge back into the exact sequential
  inputs (:mod:`repro.core.partial`): disjoint ``RSk(u)`` union,
  per-location shortlists re-ordered into dataset user order;
* everything **aggregate**-dependent stays central and sequential: the
  one tree walk (same I/O trace as a single engine), the group
  threshold ``RSk(us)``, and the best-first search over merged
  shortlists.

Since PR 5 the flow is driven by the unified phase pipeline — a
:class:`~repro.core.pipeline.ShardedExecutor` runs the same typed
stages the single-engine path does, with the scatter loops living in
the executor instead of hand-rolled here — and ``Mode.INDEXED`` rides
the same machinery: one central MIUR-root walk per pool generation
(cross-k, exactly like joint mode), then the per-query best-first
searches fan out over the root search pool against read-only
:meth:`~repro.storage.pager.PageStore.ledger_view` stores whose
:class:`~repro.storage.pager.IOCharge` ledgers replay onto the root
counter at gather time.  (The user partitions idle for indexed
flushes: MIUR pruning *replaces* the O(|U|) refine, so there is
nothing per-user to scatter.)

The headline guarantee is **result identity**: locations, keyword
sets, BRSTkNN sets, I/O counters and selection stats all equal the
single-engine answer, for any shard count, either partitioner and both
modes — property-tested in ``tests/serve/test_sharded.py``.

Execution is in-process by default (deterministic, zero setup); call
:meth:`ShardedEngine.start_pools` to give every populated shard its own
:class:`~repro.serve.pool.PersistentWorkerPool` — fork-once workers
that inherit the shard dataset and its pre-built ``DatasetArrays``
through copy-on-write — plus a **root search pool** over the full
dataset (and, when the engine indexes users, the MIUR-tree as worker
context): after the gather, the batch's central searches are
independent per query and fan out there.  A whole micro-batch
therefore fans out once per shard per phase plus one search round,
which is what the :class:`~repro.serve.server.MaxBRSTkNNServer` flush
path rides: the server detects ``manages_own_pools`` and leaves pool
ownership here.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.config import EngineConfig, Mode, QueryOptions, coerce_options
from ..core.engine import MaxBRSTkNNEngine
from ..core.history import FlushHistory, signature_of
from ..core.partial import MergedThresholds
from ..core.pipeline import FlushReport, ShardedExecutor
from ..core.planner import EngineCapabilities, QueryPlan, plan_batch, plan_query
from ..core.query import MaxBRSTkNNQuery, MaxBRSTkNNResult
from ..datagen.partition import ShardAssignment, UserPartitioner
from ..model.dataset import Dataset
from .pool import PersistentWorkerPool

__all__ = ["ShardRuntimeStats", "ShardedEngine", "make_engine"]


@dataclass(slots=True)
class ShardRuntimeStats:
    """Mutable per-shard counters (surfaced via ``shard_stats()``)."""

    shard_id: int
    users: int
    scatter_flushes: int = 0   # scatter rounds dispatched to this shard
    refine_tasks: int = 0      # (walk, k) refinements executed
    queries: int = 0           # queries shortlisted on this shard
    refine_time_s: float = 0.0
    shortlist_time_s: float = 0.0
    #: Most work items (queries of a shortlist round, ks of a refine
    #: round) queued for this shard at the instant of a scatter
    #: dispatch — the per-shard load signal behind the flush.
    queue_depth_peak: int = 0
    pool_workers: int = 0      # 0 = in-process scatter
    retries: int = 0           # supervised rounds re-dispatched here
    degraded_rounds: int = 0   # rounds that fell back to in-process

    def snapshot(self) -> dict:
        return {
            "shard": self.shard_id,
            "users": self.users,
            "pool_workers": self.pool_workers,
            "scatter_flushes": self.scatter_flushes,
            "refine_tasks": self.refine_tasks,
            "queries": self.queries,
            "queue_depth_peak": self.queue_depth_peak,
            "refine_ms": round(1000 * self.refine_time_s, 2),
            "shortlist_ms": round(1000 * self.shortlist_time_s, 2),
            "retries": self.retries,
            "degraded_rounds": self.degraded_rounds,
        }


@dataclass(slots=True)
class _Shard:
    """One partition: engine, pool (optional), counters, rsk cache."""

    shard_id: int
    engine: MaxBRSTkNNEngine
    stats: ShardRuntimeStats
    pool: Optional[PersistentWorkerPool] = None
    #: Per-k RSk(u) maps for this shard's users (filled by refine
    #: rounds, value-stable across pool re-walks by subsumption).
    rsk_by_k: Dict[int, Dict[int, float]] = field(default_factory=dict)

    @property
    def users(self) -> int:
        return len(self.engine.dataset.users)


class ShardedEngine:
    """N partitioned engines + scatter/gather merge, one engine surface.

    Drop-in for :class:`MaxBRSTkNNEngine` wherever ``Mode.JOINT`` or
    ``Mode.INDEXED`` queries are served: ``query`` / ``query_batch`` /
    ``plan`` / ``capabilities`` / ``clear_topk_cache`` match, and
    :class:`~repro.serve.server.MaxBRSTkNNServer` takes either engine
    type unchanged.

    Parameters
    ----------
    dataset:
        The full bichromatic dataset.
    config:
        :class:`EngineConfig` with ``num_shards`` (>= 1) and
        ``partitioner``.  ``index_users=True`` builds the MIUR-tree on
        the *root* engine (indexed flushes are central + search
        fan-out; shard engines never need user trees).  Shard engines
        share the root's object MIR-tree (built once).
    """

    #: The serving layer must not wrap this engine in its own worker
    #: pool — scatter parallelism is owned here, per shard.
    manages_own_pools = True

    def __init__(self, dataset: Dataset, config: Optional[EngineConfig] = None) -> None:
        config = config if config is not None else EngineConfig()
        if not isinstance(config, EngineConfig):
            raise TypeError(f"config must be an EngineConfig, got {type(config).__name__}")
        self.config = config
        self.dataset = dataset
        #: Full-dataset engine: owns the object tree, the page store /
        #: I/O counter, the memoized cross-k traversal pools (joint and
        #: MIUR-root), and — with ``index_users=True`` — the MIUR-tree.
        #: The one tree walk per pool generation happens HERE —
        #: identical cost and I/O trace to single-engine serving.
        self.root = MaxBRSTkNNEngine(dataset, config.with_(num_shards=1))
        # Shard engines run only the per-user joint phases; they never
        # need their own MIUR-trees (indexed flushes are central).
        shard_base = config.with_(num_shards=1, index_users=False)
        partitioner = UserPartitioner(config.partitioner.value, config.num_shards)
        self.assignment: ShardAssignment
        self.assignment, shard_datasets = partitioner.split(dataset)
        self._shards: List[_Shard] = [
            _Shard(
                shard_id=i,
                engine=MaxBRSTkNNEngine(ds, shard_base, object_tree=self.root.object_tree),
                stats=ShardRuntimeStats(shard_id=i, users=len(ds.users)),
            )
            for i, ds in enumerate(shard_datasets)
        ]
        self._user_pos: Dict[int, int] = {
            u.item_id: i for i, u in enumerate(dataset.users)
        }
        # Skew guard (first step toward flush-time rebalancing): the
        # grid partitioner can pile co-located users onto one shard,
        # turning the scatter into a convoy behind the big shard.
        self.partition_skew = self.assignment.largest_skew()
        counts = self.assignment.counts()
        if (
            config.num_shards > 1
            and dataset.users
            and max(counts) > 0.5 * len(dataset.users)
            # With 2 shards a bare majority is statistical noise; only
            # a shard substantially over its ideal share convoys.
            and self.partition_skew > 1.5
        ):
            warnings.warn(
                f"unbalanced partition: shard {counts.index(max(counts))} holds "
                f"{max(counts)}/{len(dataset.users)} users "
                f"({config.partitioner.value} partitioner, skew "
                f"{self.partition_skew:.2f}x ideal); scatter rounds will "
                f"convoy behind it — consider partitioner='hash' or fewer "
                f"shards",
                RuntimeWarning,
                stacklevel=2,
            )
        # Global super-user, built eagerly so (a) every scatter round
        # ships the same object and (b) fork pools inherit it instead
        # of rebuilding per worker.
        self._su = dataset.super_user if dataset.users else None
        self._merged_by_k: Dict[int, MergedThresholds] = {}
        self._search_pool: Optional[PersistentWorkerPool] = None
        self._pools_started = False
        #: Socket transport state (connect_hosts/close_hosts): the
        #: registry of shard host processes, or None on the fork path.
        self._registry = None
        self._hosts_connected = False
        #: Fault counters of pools already closed, so `fault_counters()`
        #: stays monotone across pool generations and restarts.
        self._closed_fault_totals: Dict[str, int] = {
            "respawns": 0, "worker_deaths": 0, "deadline_hits": 0, "retries": 0,
        }
        #: Gather-side accounting: merge + central search wall time and
        #: search fan-out rounds (``gather_stats()``).
        self._merge_s = 0.0
        self._search_s = 0.0
        self._search_flushes = 0
        self._executor = ShardedExecutor(self)
        #: Observed-cost feedback for the planner (same contract as the
        #: single engine's ``flush_history``); survives
        #: :meth:`clear_topk_cache` — it holds timings, never answers.
        self.flush_history = FlushHistory()

    # ------------------------------------------------------------------
    # Introspection / engine-compatible surface
    # ------------------------------------------------------------------
    @property
    def object_tree(self):
        return self.root.object_tree

    @property
    def user_tree(self):
        return self.root.user_tree

    @property
    def io(self):
        return self.root.io

    @property
    def traversal_runs(self) -> int:
        """Tree walks executed — one per pool generation, like a
        single engine's batch path (shards never walk)."""
        return self.root.traversal_runs

    @property
    def last_flush_report(self) -> Optional[FlushReport]:
        """Per-stage accounting of the most recent pipeline flush."""
        return self._executor.last_flush_report

    @property
    def shards(self) -> Tuple[_Shard, ...]:
        return tuple(self._shards)

    def capabilities(self) -> EngineCapabilities:
        return replace(
            EngineCapabilities.of(self.root),
            num_shards=self.config.num_shards,
            partitioner=self.config.partitioner.value,
            shard_users=tuple(self.assignment.counts()),
            search_workers=(
                self._search_pool.workers if self._search_pool is not None else 0
            ),
        )

    def plan(
        self, options: Optional[QueryOptions] = None, ks: Sequence[int] = ()
    ) -> QueryPlan:
        """Resolve options against the sharded layout without executing."""
        options = options if options is not None else QueryOptions.default()
        caps = self.capabilities()
        if ks:
            return plan_batch(options, caps, list(ks), history=self.flush_history)
        return plan_query(options, caps, history=self.flush_history)

    def shard_stats(self) -> List[dict]:
        """Per-shard runtime counters (queue depth, flushes, times)."""
        return [shard.stats.snapshot() for shard in self._shards]

    def gather_stats(self) -> dict:
        """Gather-side counters: merge and central-search accounting."""
        return {
            "merge_ms": round(1000 * self._merge_s, 2),
            "search_ms": round(1000 * self._search_s, 2),
            "search_flushes": self._search_flushes,
            "search_workers": (
                self._search_pool.workers if self._search_pool is not None else 0
            ),
            "partition_skew": round(self.partition_skew, 3),
        }

    def clear_topk_cache(self) -> None:
        """Drop the shared pools and every merged/per-shard threshold."""
        self.root.clear_topk_cache()
        self._merged_by_k.clear()
        for shard in self._shards:
            shard.rsk_by_k.clear()

    def reset_io(self) -> None:
        self.root.reset_io()

    def prewarm_kernels(self) -> None:
        """Build every numpy cache up front (server startup hook).

        Full-dataset arrays, the shared tree arrays, and each shard's
        ``DatasetArrays`` — so first-query latency pays no build cost
        and pools forked later inherit everything via copy-on-write.
        """
        from ..core.kernels import HAS_NUMPY, arrays_for, tree_arrays_for

        if not HAS_NUMPY:
            return
        arrays_for(self.dataset)
        tree_arrays_for(self.root.object_tree)
        for shard in self._shards:
            if shard.users:
                arrays_for(shard.engine.dataset)
        self.root.ensure_arena()

    # ------------------------------------------------------------------
    # Zero-copy storage tier (delegated to the root engine)
    # ------------------------------------------------------------------
    @property
    def payload_codec(self):
        """The root engine's arena codec (``None`` without ``use_shm``)."""
        return self.root.payload_codec

    @property
    def arena_name(self) -> Optional[str]:
        return self.root.arena_name

    def ensure_arena(self):
        """Materialize the ONE arena (root-owned) for the whole engine."""
        return self.root.ensure_arena()

    def close_arena(self) -> None:
        self.root.close_arena()

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def start_pools(
        self,
        workers_per_shard: int = 1,
        search_workers: Optional[int] = None,
        *,
        retry=None,
        deadline=None,
        faults=None,
    ) -> "ShardedEngine":
        """Fork one persistent pool per populated shard + a search pool.

        Workers inherit their shard dataset (and its pre-built
        ``DatasetArrays``) via copy-on-write at fork time; scatter
        rounds then ship only the small per-batch payloads.  The root
        **search pool** holds the full dataset — plus the MIUR-tree as
        worker context when the engine indexes users — and answers the
        gather-side per-query searches, ``search_workers`` wide
        (defaults to ``num_shards``; 0 disables it, keeping the
        searches in-process).  Idempotent start is an error (mirrors
        the server lifecycle).

        If any pool construction fails partway (fork unavailable, out
        of memory), every pool already forked is torn down before the
        error propagates — a failed start leaves no leaked workers and
        the engine back in its in-process state.

        ``retry`` / ``deadline`` are the supervision policies
        (:class:`~repro.serve.config.RetryPolicy` /
        :class:`~repro.serve.config.DeadlinePolicy`) every pool runs
        under; ``faults`` is an optional
        :class:`~repro.serve.faults.FaultPlan` for deterministic fault
        injection (scoped per pool via its ``pool_id``: shard pools get
        their shard id, the search pool ``SEARCH_POOL_ID``).
        """
        if self._pools_started:
            raise RuntimeError("shard pools already started")
        if self._hosts_connected:
            raise RuntimeError("cannot start pools: shard hosts are connected")
        if workers_per_shard < 1:
            raise ValueError(f"workers_per_shard must be >= 1, got {workers_per_shard}")
        if search_workers is None:
            search_workers = self.config.num_shards
        if search_workers < 0:
            raise ValueError(f"search_workers must be >= 0, got {search_workers}")
        try:
            # Materialize the arena (config.use_shm) BEFORE any fork:
            # workers inherit the shm-backed views via copy-on-write
            # and respawned generations re-attach it by this name.
            arena = self.root.ensure_arena()
            arena_name = arena.name if arena is not None else None
            for shard in self._shards:
                if shard.users == 0:
                    continue  # nothing will ever be scattered here
                shard.pool = PersistentWorkerPool(
                    shard.engine.dataset, workers_per_shard,
                    retry=retry, deadline=deadline, faults=faults,
                    pool_id=shard.shard_id, arena_name=arena_name,
                )
                shard.stats.pool_workers = workers_per_shard
            if search_workers > 0:
                from .faults import SEARCH_POOL_ID

                self._search_pool = PersistentWorkerPool(
                    self.dataset, search_workers, context=self.root.user_tree,
                    retry=retry, deadline=deadline, faults=faults,
                    pool_id=SEARCH_POOL_ID, arena_name=arena_name,
                )
        except BaseException:
            # _pools_started is still False, so the caller (e.g. the
            # server's start()) will never call close_pools() for us —
            # reap the partial state here or the forked workers leak.
            self.close_pools()
            raise
        self._pools_started = True
        return self

    def close_pools(self, timeout_s: Optional[float] = None) -> None:
        """Shut every shard pool (and the search pool) down (idempotent).

        ``timeout_s`` bounds each pool's shutdown (see
        :meth:`~repro.serve.pool.PersistentWorkerPool.close`); ``None``
        waits unbounded.  Every pool is closed even if some fail: close
        errors are collected and surfaced as ONE aggregated
        ``RuntimeWarning`` after the sweep, so a bad shard can neither
        abort its siblings' shutdown nor leak their workers.
        """
        failures: List[str] = []

        def _close(label: str, pool: PersistentWorkerPool) -> None:
            self._absorb_fault_totals(pool)
            try:
                pool.close(timeout_s=timeout_s)
            except Exception as exc:  # noqa: BLE001 - aggregate, keep sweeping
                failures.append(f"{label}: {exc!r}")

        for shard in self._shards:
            if shard.pool is not None:
                _close(f"shard {shard.shard_id}", shard.pool)
                shard.pool = None
                shard.stats.pool_workers = 0
        if self._search_pool is not None:
            _close("search pool", self._search_pool)
            self._search_pool = None
        # Unlink the arena only after every worker process is gone:
        # live attachments keep their mappings (POSIX semantics), but a
        # clean close leaves /dev/shm empty — the leak criterion the
        # shm tests scan for.
        self.root.close_arena()
        self._pools_started = False
        if failures:
            warnings.warn(
                f"{len(failures)} worker pool(s) failed to close cleanly: "
                + "; ".join(failures),
                RuntimeWarning,
                stacklevel=2,
            )

    # ------------------------------------------------------------------
    # Shard host lifecycle (the socket transport)
    # ------------------------------------------------------------------
    def connect_hosts(
        self, hosts, *, retry=None, deadline=None, connect_timeout_s: float = 5.0
    ) -> "ShardedEngine":
        """Scatter to shard host processes over TCP (socket analog of
        :meth:`start_pools`).

        ``hosts`` is a ``"host:port,host:port"`` string or a sequence
        of specs/pairs — one entry per ``repro shard-host`` process,
        each of which rebuilt this engine's exact partition layout from
        the shared workload spec (:mod:`repro.serve.shardhost`).  The
        engine's executor is swapped for a
        :class:`~repro.serve.transport.SocketExecutor`; pipeline stages
        run unchanged, scatter rounds cross TCP as
        :class:`~repro.serve.transport.FrameCodec` frames carrying the
        arena-codec payloads verbatim.  ``retry`` / ``deadline`` are
        the same supervision policies the fork pools take; host death
        re-scatters a round to a surviving host, exhaustion degrades it
        to in-process execution — results bitwise-identical throughout.

        Mutually exclusive with :meth:`start_pools` (one transport at a
        time); undo with :meth:`close_hosts`.
        """
        if self._pools_started:
            raise RuntimeError("cannot connect hosts: fork pools are running")
        if self._hosts_connected:
            raise RuntimeError("shard hosts already connected")
        from .transport import ShardRegistry, SocketExecutor

        # Materialize the arena (config.use_shm) BEFORE the first
        # scatter so payload encoding has refs to ship; hosts attach
        # the segments lazily, by name, as foreign attachers.
        self.root.ensure_arena()
        registry = ShardRegistry.from_specs(
            hosts, connect_timeout_s=connect_timeout_s
        )
        registry.connect_all()
        self._registry = registry
        self._executor = SocketExecutor(
            self, registry, retry=retry, deadline=deadline
        )
        self._hosts_connected = True
        return self

    def close_hosts(self) -> None:
        """Drop the host connections and restore in-process scatter
        (idempotent).  Registry fault counters are banked so
        :meth:`fault_counters` stays monotone, mirroring pool close."""
        if not self._hosts_connected:
            return
        registry = self._registry
        totals = self._closed_fault_totals
        for key, value in registry.fault_counters().items():
            totals[key] = totals.get(key, 0) + value
        registry.close()
        self._registry = None
        self._executor = ShardedExecutor(self)
        self._hosts_connected = False
        self.root.close_arena()

    def _absorb_fault_totals(self, pool: PersistentWorkerPool) -> None:
        """Bank a closing pool's counters so totals stay monotone."""
        health = pool.health
        totals = self._closed_fault_totals
        totals["respawns"] += health.respawns
        totals["worker_deaths"] += health.worker_deaths
        totals["deadline_hits"] += health.deadline_hits
        totals["retries"] += health.retries

    def _live_pools(self) -> List[PersistentWorkerPool]:
        pools = [s.pool for s in self._shards if s.pool is not None]
        if self._search_pool is not None:
            pools.append(self._search_pool)
        return pools

    def fault_counters(self) -> Dict[str, int]:
        """Respawn/death/deadline/retry totals across every pool this
        engine ever ran (live pools plus the banked closed ones)."""
        totals = dict(self._closed_fault_totals)
        for pool in self._live_pools():
            health = pool.health
            totals["respawns"] += health.respawns
            totals["worker_deaths"] += health.worker_deaths
            totals["deadline_hits"] += health.deadline_hits
            totals["retries"] += health.retries
        if self._registry is not None:
            for key, value in self._registry.fault_counters().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def pool_health(self) -> List[dict]:
        """Typed health snapshot of every live pool (shards + search)."""
        rows = []
        for shard in self._shards:
            if shard.pool is not None:
                rows.append({"pool": f"shard-{shard.shard_id}",
                             **shard.pool.health.snapshot()})
        if self._search_pool is not None:
            rows.append({"pool": "search", **self._search_pool.health.snapshot()})
        if self._registry is not None:
            rows.extend(self._registry.health_rows())
        return rows

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close_pools()
        self.close_hosts()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        query: MaxBRSTkNNQuery,
        options: Union[QueryOptions, str, None] = None,
        *,
        method: Optional[str] = None,
        mode: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> MaxBRSTkNNResult:
        """Answer one query (executed as a scatter/gather batch of one).

        Unlike a cold single-engine ``query``, the shared traversal
        pool is memoized across calls — thresholds derived from it are
        value-identical to dedicated walks (PR 3's subsumption
        guarantee; PR 5 extended it to the indexed node-RSk), so
        results still match sequential queries exactly.
        """
        opts = coerce_options(
            options, method=method, mode=mode, backend=backend,
            api="ShardedEngine.query",
        )
        # Plan as a batch of one directly (not plan_query): a 1-shard
        # ShardedEngine is indistinguishable from a single engine in
        # the capabilities, but execution always needs the shared-pool
        # batch plan (shared_traversal_k) regardless of shard count.
        plan = plan_batch(
            opts, self.capabilities(), [query.k], history=self.flush_history
        )
        return self._execute_batch([query], plan)[0]

    def query_batch(
        self,
        queries: Sequence[MaxBRSTkNNQuery],
        options: Union[QueryOptions, str, None] = None,
        *,
        method: Optional[str] = None,
        mode: Optional[str] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        pool=None,
    ) -> List[MaxBRSTkNNResult]:
        """Answer a batch: one shared walk, one scatter round per phase.

        ``QueryOptions.workers`` does not apply here — parallelism
        comes from the per-shard and search pools
        (:meth:`start_pools`); the planner resolves sharded plans to
        ``workers=1`` so ``explain()`` reflects that.
        """
        if pool is not None:
            raise TypeError(
                "ShardedEngine owns its per-shard pools (start_pools()); "
                "an external selection pool cannot be injected"
            )
        opts = coerce_options(
            options, method=method, mode=mode, backend=backend, workers=workers,
            api="ShardedEngine.query_batch",
        )
        if opts.workers != 1:
            # Scatter/search pools are the only parallelism here; drop
            # the fork fan-out request before planning so the plan (and
            # explain()) never claims a pool this engine will not run.
            opts = opts.with_(workers=1)
        queries = list(queries)
        if not queries:
            return []
        plan = plan_batch(
            opts, self.capabilities(), [q.k for q in queries],
            history=self.flush_history,
        )
        return self._execute_batch(queries, plan)

    # ------------------------------------------------------------------
    # Scatter/gather execution (driven by the unified phase pipeline)
    # ------------------------------------------------------------------
    def _execute_batch(
        self, queries: List[MaxBRSTkNNQuery], plan: QueryPlan
    ) -> List[MaxBRSTkNNResult]:
        if self._su is None:
            raise ValueError("dataset has no users to aggregate")
        if plan.shared_traversal_k is None or plan.mode is Mode.BASELINE:
            # The planner rejects baseline for num_shards > 1; a
            # 1-shard ShardedEngine is indistinguishable there, so
            # enforce the group-traversal contract here too.
            raise ValueError(
                f"sharded execution covers mode=joint and mode=indexed only "
                f"(got mode={plan.mode})"
            )
        results = self._executor.execute(queries, plan)
        if self._executor.last_flush_report is not None:
            self.flush_history.record(
                signature_of(plan), self._executor.last_flush_report
            )
        return results


def make_engine(
    dataset: Dataset, config: Optional[EngineConfig] = None
) -> Union[MaxBRSTkNNEngine, ShardedEngine]:
    """Build the right engine for ``config``: sharded iff ``num_shards > 1``."""
    config = config if config is not None else EngineConfig()
    if config.num_shards > 1:
        return ShardedEngine(dataset, config)
    return MaxBRSTkNNEngine(dataset, config)
