"""Sharded execution: N partitioned engines behind one engine facade.

A single :class:`~repro.core.engine.MaxBRSTkNNEngine` is the
scalability ceiling of the serving stack: however fast the kernels,
every query's O(|U|) phases — Algorithm 2 refinement and Algorithm 3's
per-user shortlist — walk the whole user set in one process.  Because
both phases are *per-user* computations against shared global state,
the user set partitions cleanly:

* **scatter** — each shard (a full ``MaxBRSTkNNEngine`` over a
  user-subset dataset sharing the root's object MIR-tree) refines
  ``RSk(u)`` for its users against the one globally shared traversal
  pool, and shortlists its users at every surviving candidate location;
* **gather** — per-shard partials merge back into the exact sequential
  inputs (:mod:`repro.core.partial`): disjoint ``RSk(u)`` union,
  per-location shortlists re-ordered into dataset user order;
* everything **aggregate**-dependent stays central and sequential: the
  one MIR-tree walk (same I/O trace as a single engine), the group
  threshold ``RSk(us)``, and the best-first search over merged
  shortlists (:func:`~repro.core.candidate_selection.search_shortlists`).

The headline guarantee is **result identity**: locations, keyword
sets, BRSTkNN sets, I/O counters and selection stats all equal the
single-engine answer, for any shard count and either partitioner —
property-tested in ``tests/serve/test_sharded.py``.

Execution is in-process by default (deterministic, zero setup); call
:meth:`ShardedEngine.start_pools` to give every populated shard its own
:class:`~repro.serve.pool.PersistentWorkerPool` — fork-once workers
that inherit the shard dataset and its pre-built ``DatasetArrays``
through copy-on-write — plus a **root search pool** over the full
dataset: after the gather, the batch's central best-first searches are
independent per query and fan out there (each worker re-materializes
the id-level merged shortlists against its copy-on-write dataset and
runs the *sequential* search code, so exactness is untouched).  A
whole micro-batch therefore fans out once per shard per phase (one
refine round, one shortlist round) plus one search round, which is
what the :class:`~repro.serve.server.MaxBRSTkNNServer` flush path
rides: the server detects ``manages_own_pools`` and leaves pool
ownership here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.batch import _ensure_traversal_pool, derive_rsk_group
from ..core.config import EngineConfig, QueryOptions, coerce_options
from ..core.engine import MaxBRSTkNNEngine
from ..core.partial import (
    MergedThresholds,
    merge_partials,
    merge_query_shortlist_ids,
    run_merged_search,
)
from ..core.planner import EngineCapabilities, QueryPlan, plan_batch, plan_query
from ..core.query import MaxBRSTkNNQuery, MaxBRSTkNNResult, QueryStats
from ..datagen.partition import ShardAssignment, UserPartitioner
from ..model.dataset import Dataset
from .pool import PersistentWorkerPool, execute_shard_payload

__all__ = ["ShardRuntimeStats", "ShardedEngine", "make_engine"]


@dataclass(slots=True)
class ShardRuntimeStats:
    """Mutable per-shard counters (surfaced via ``shard_stats()``)."""

    shard_id: int
    users: int
    scatter_flushes: int = 0   # scatter rounds dispatched to this shard
    refine_tasks: int = 0      # (walk, k) refinements executed
    queries: int = 0           # queries shortlisted on this shard
    refine_time_s: float = 0.0
    shortlist_time_s: float = 0.0
    #: Most work items (queries of a shortlist round, ks of a refine
    #: round) queued for this shard at the instant of a scatter
    #: dispatch — the per-shard load signal behind the flush.
    queue_depth_peak: int = 0
    pool_workers: int = 0      # 0 = in-process scatter

    def snapshot(self) -> dict:
        return {
            "shard": self.shard_id,
            "users": self.users,
            "pool_workers": self.pool_workers,
            "scatter_flushes": self.scatter_flushes,
            "refine_tasks": self.refine_tasks,
            "queries": self.queries,
            "queue_depth_peak": self.queue_depth_peak,
            "refine_ms": round(1000 * self.refine_time_s, 2),
            "shortlist_ms": round(1000 * self.shortlist_time_s, 2),
        }


@dataclass(slots=True)
class _Shard:
    """One partition: engine, pool (optional), counters, rsk cache."""

    shard_id: int
    engine: MaxBRSTkNNEngine
    stats: ShardRuntimeStats
    pool: Optional[PersistentWorkerPool] = None
    #: Per-k RSk(u) maps for this shard's users (filled by refine
    #: rounds, value-stable across pool re-walks by subsumption).
    rsk_by_k: Dict[int, Dict[int, float]] = field(default_factory=dict)

    @property
    def users(self) -> int:
        return len(self.engine.dataset.users)


class ShardedEngine:
    """N partitioned engines + scatter/gather merge, one engine surface.

    Drop-in for :class:`MaxBRSTkNNEngine` wherever ``Mode.JOINT``
    queries are served: ``query`` / ``query_batch`` / ``plan`` /
    ``capabilities`` / ``clear_topk_cache`` match, and
    :class:`~repro.serve.server.MaxBRSTkNNServer` takes either engine
    type unchanged.

    Parameters
    ----------
    dataset:
        The full bichromatic dataset.
    config:
        :class:`EngineConfig` with ``num_shards`` (>= 1) and
        ``partitioner``.  The root engine and every shard engine are
        built with the same config minus the shard fields; shard
        engines share the root's object MIR-tree (built once).
    """

    #: The serving layer must not wrap this engine in its own worker
    #: pool — scatter parallelism is owned here, per shard.
    manages_own_pools = True

    def __init__(self, dataset: Dataset, config: Optional[EngineConfig] = None) -> None:
        config = config if config is not None else EngineConfig()
        if not isinstance(config, EngineConfig):
            raise TypeError(f"config must be an EngineConfig, got {type(config).__name__}")
        if config.index_users:
            raise ValueError(
                "sharded serving executes mode=joint only; build with "
                "index_users=False (the MIUR pipeline has no mergeable split)"
            )
        self.config = config
        self.dataset = dataset
        base = config.with_(num_shards=1)
        #: Full-dataset engine: owns the object tree, the page store /
        #: I/O counter, and the memoized cross-k traversal pool.  The
        #: one tree walk per pool generation happens HERE — identical
        #: cost and I/O trace to single-engine serving.
        self.root = MaxBRSTkNNEngine(dataset, base)
        partitioner = UserPartitioner(config.partitioner.value, config.num_shards)
        self.assignment: ShardAssignment
        self.assignment, shard_datasets = partitioner.split(dataset)
        self._shards: List[_Shard] = [
            _Shard(
                shard_id=i,
                engine=MaxBRSTkNNEngine(ds, base, object_tree=self.root.object_tree),
                stats=ShardRuntimeStats(shard_id=i, users=len(ds.users)),
            )
            for i, ds in enumerate(shard_datasets)
        ]
        self._user_pos: Dict[int, int] = {
            u.item_id: i for i, u in enumerate(dataset.users)
        }
        # Global super-user, built eagerly so (a) every scatter round
        # ships the same object and (b) fork pools inherit it instead
        # of rebuilding per worker.
        self._su = dataset.super_user if dataset.users else None
        self._merged_by_k: Dict[int, MergedThresholds] = {}
        self._rsk_group_by_k: Dict[Tuple[int, int], float] = {}
        self._search_pool: Optional[PersistentWorkerPool] = None
        self._pools_started = False
        #: Gather-side accounting: merge + central search wall time and
        #: search fan-out rounds (``gather_stats()``).
        self._merge_s = 0.0
        self._search_s = 0.0
        self._search_flushes = 0

    # ------------------------------------------------------------------
    # Introspection / engine-compatible surface
    # ------------------------------------------------------------------
    @property
    def object_tree(self):
        return self.root.object_tree

    @property
    def io(self):
        return self.root.io

    @property
    def traversal_runs(self) -> int:
        """Tree walks executed — one per pool generation, like a
        single engine's batch path (shards never walk)."""
        return self.root.traversal_runs

    @property
    def shards(self) -> Tuple[_Shard, ...]:
        return tuple(self._shards)

    def capabilities(self) -> EngineCapabilities:
        return replace(
            EngineCapabilities.of(self.root),
            num_shards=self.config.num_shards,
            partitioner=self.config.partitioner.value,
            shard_users=tuple(self.assignment.counts()),
            search_workers=(
                self._search_pool.workers if self._search_pool is not None else 0
            ),
        )

    def plan(
        self, options: Optional[QueryOptions] = None, ks: Sequence[int] = ()
    ) -> QueryPlan:
        """Resolve options against the sharded layout without executing."""
        options = options if options is not None else QueryOptions.default()
        caps = self.capabilities()
        if ks:
            return plan_batch(options, caps, list(ks))
        return plan_query(options, caps)

    def shard_stats(self) -> List[dict]:
        """Per-shard runtime counters (queue depth, flushes, times)."""
        return [shard.stats.snapshot() for shard in self._shards]

    def gather_stats(self) -> dict:
        """Gather-side counters: merge and central-search accounting."""
        return {
            "merge_ms": round(1000 * self._merge_s, 2),
            "search_ms": round(1000 * self._search_s, 2),
            "search_flushes": self._search_flushes,
            "search_workers": (
                self._search_pool.workers if self._search_pool is not None else 0
            ),
        }

    def clear_topk_cache(self) -> None:
        """Drop the shared pool and every merged/per-shard threshold."""
        self.root.clear_topk_cache()
        self._merged_by_k.clear()
        self._rsk_group_by_k.clear()
        for shard in self._shards:
            shard.rsk_by_k.clear()

    def reset_io(self) -> None:
        self.root.reset_io()

    def prewarm_kernels(self) -> None:
        """Build every numpy cache up front (server startup hook).

        Full-dataset arrays, the shared tree arrays, and each shard's
        ``DatasetArrays`` — so first-query latency pays no build cost
        and pools forked later inherit everything via copy-on-write.
        """
        from ..core.kernels import HAS_NUMPY, arrays_for, tree_arrays_for

        if not HAS_NUMPY:
            return
        arrays_for(self.dataset)
        tree_arrays_for(self.root.object_tree)
        for shard in self._shards:
            if shard.users:
                arrays_for(shard.engine.dataset)

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def start_pools(
        self,
        workers_per_shard: int = 1,
        search_workers: Optional[int] = None,
    ) -> "ShardedEngine":
        """Fork one persistent pool per populated shard + a search pool.

        Workers inherit their shard dataset (and its pre-built
        ``DatasetArrays``) via copy-on-write at fork time; scatter
        rounds then ship only the small per-batch payloads.  The root
        **search pool** holds the full dataset and answers the
        gather-side central searches, ``search_workers`` wide (defaults
        to ``num_shards``; 0 disables it, keeping the searches
        in-process).  Idempotent start is an error (mirrors the server
        lifecycle).
        """
        if self._pools_started:
            raise RuntimeError("shard pools already started")
        if workers_per_shard < 1:
            raise ValueError(f"workers_per_shard must be >= 1, got {workers_per_shard}")
        if search_workers is None:
            search_workers = self.config.num_shards
        if search_workers < 0:
            raise ValueError(f"search_workers must be >= 0, got {search_workers}")
        for shard in self._shards:
            if shard.users == 0:
                continue  # nothing will ever be scattered here
            shard.pool = PersistentWorkerPool(shard.engine.dataset, workers_per_shard)
            shard.stats.pool_workers = workers_per_shard
        if search_workers > 0:
            self._search_pool = PersistentWorkerPool(self.dataset, search_workers)
        self._pools_started = True
        return self

    def close_pools(self) -> None:
        """Shut every shard pool (and the search pool) down (idempotent)."""
        for shard in self._shards:
            if shard.pool is not None:
                shard.pool.close()
                shard.pool = None
                shard.stats.pool_workers = 0
        if self._search_pool is not None:
            self._search_pool.close()
            self._search_pool = None
        self._pools_started = False

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close_pools()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        query: MaxBRSTkNNQuery,
        options: Union[QueryOptions, str, None] = None,
        *,
        method: Optional[str] = None,
        mode: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> MaxBRSTkNNResult:
        """Answer one query (executed as a scatter/gather batch of one).

        Unlike a cold single-engine ``query``, the shared traversal
        pool is memoized across calls — thresholds derived from it are
        value-identical to dedicated walks (PR 3's subsumption
        guarantee), so results still match sequential queries exactly.
        """
        opts = coerce_options(
            options, method=method, mode=mode, backend=backend,
            api="ShardedEngine.query",
        )
        # Plan as a batch of one directly (not plan_query): a 1-shard
        # ShardedEngine is indistinguishable from a single engine in
        # the capabilities, but execution always needs the shared-pool
        # batch plan (shared_traversal_k) regardless of shard count.
        plan = plan_batch(opts, self.capabilities(), [query.k])
        return self._execute_batch([query], plan)[0]

    def query_batch(
        self,
        queries: Sequence[MaxBRSTkNNQuery],
        options: Union[QueryOptions, str, None] = None,
        *,
        method: Optional[str] = None,
        mode: Optional[str] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        pool=None,
    ) -> List[MaxBRSTkNNResult]:
        """Answer a batch: one shared walk, one scatter round per phase.

        ``QueryOptions.workers`` does not apply here — parallelism
        comes from the per-shard and search pools
        (:meth:`start_pools`); the planner resolves sharded plans to
        ``workers=1`` so ``explain()`` reflects that.
        """
        if pool is not None:
            raise TypeError(
                "ShardedEngine owns its per-shard pools (start_pools()); "
                "an external selection pool cannot be injected"
            )
        opts = coerce_options(
            options, method=method, mode=mode, backend=backend, workers=workers,
            api="ShardedEngine.query_batch",
        )
        if opts.workers != 1:
            # Scatter/search pools are the only parallelism here; drop
            # the fork fan-out request before planning so the plan (and
            # explain()) never claims a pool this engine will not run.
            opts = opts.with_(workers=1)
        queries = list(queries)
        if not queries:
            return []
        plan = plan_batch(opts, self.capabilities(), [q.k for q in queries])
        return self._execute_batch(queries, plan)

    # ------------------------------------------------------------------
    # Scatter/gather execution
    # ------------------------------------------------------------------
    def _execute_batch(
        self, queries: List[MaxBRSTkNNQuery], plan: QueryPlan
    ) -> List[MaxBRSTkNNResult]:
        if self._su is None:
            raise ValueError("dataset has no users to aggregate")
        backend = plan.backend
        if plan.shared_traversal_k is None:
            # The planner rejects non-joint modes for num_shards > 1;
            # a 1-shard ShardedEngine is indistinguishable there, so
            # enforce the joint-only contract here too.
            raise ValueError(
                f"sharded execution covers mode=joint only (got mode={plan.mode})"
            )
        pool_state = _ensure_traversal_pool(self.root, plan.shared_traversal_k, backend)
        engaged = [s for s in self._shards if s.users > 0]

        # Phase 1 scatter: refine RSk(u) per shard for every k this
        # engine has not merged yet (memoized across batches; values
        # are walk-independent by subsumption, so a pool re-walk does
        # not invalidate them).
        need_ks = [k for k in plan.distinct_ks if k not in self._merged_by_k]
        if need_ks:
            self._scatter_refine(engaged, pool_state, need_ks, backend)
        group_by_k = {
            k: self._group_threshold(pool_state, k) for k in plan.distinct_ks
        }

        # Phase 2 scatter: one shortlist round covers the whole batch.
        per_shard_partials = self._scatter_shortlist(
            engaged, queries, group_by_k, backend
        )

        # Gather: merge each query's shard shortlists at the id level
        # (sequential user order restored here).
        merged_inputs = []
        for qi, q in enumerate(queries):
            merged = self._merged_by_k[q.k]
            stats = QueryStats(
                users_total=merged.users_total,
                topk_time_s=pool_state.topk_time_s + merged.time_s,
                io_node_visits=pool_state.io_node_visits,
                io_invfile_blocks=pool_state.io_invfile_blocks,
            )
            partials = [per_shard[qi] for per_shard in per_shard_partials]
            t0 = time.perf_counter()
            kept, ids_per_location, pruned = merge_query_shortlist_ids(
                partials, self._user_pos
            )
            self._merge_s += time.perf_counter() - t0
            base_selection_s = sum(p.time_s for p in partials)
            merged_inputs.append(
                (q, kept, ids_per_location, pruned, stats, base_selection_s)
            )

        # Central search per query: independent across queries, so the
        # flush fans out once more over the root search pool when one
        # is running; otherwise the sequential in-process loop.
        if self._search_pool is not None and len(queries) > 1:
            return self._fan_out_searches(merged_inputs, group_by_k, plan)
        results: List[MaxBRSTkNNResult] = []
        for q, kept, ids_per_location, pruned, stats, base_selection_s in merged_inputs:
            merged = self._merged_by_k[q.k]
            result, elapsed = run_merged_search(
                self.dataset, q, kept, ids_per_location, pruned, stats,
                base_selection_s, merged.rsk, group_by_k[q.k],
                plan.method.value, backend,
            )
            self._search_s += elapsed
            results.append(result)
        return results

    def _fan_out_searches(
        self, merged_inputs: List[tuple], group_by_k: Dict[int, float], plan: QueryPlan
    ) -> List[MaxBRSTkNNResult]:
        """Chunk the flush's central searches over the root search pool.

        Items are grouped per k so each chunk ships the (O(|U|)-sized)
        merged rsk map once; within a k group, round-robin chunks keep
        every worker busy.  Workers run the sequential search code over
        re-materialized shortlists — results identical to the
        in-process loop by construction.
        """
        assert self._search_pool is not None
        self._search_flushes += 1
        by_k: Dict[int, List[int]] = {}
        for i, item in enumerate(merged_inputs):
            by_k.setdefault(item[0].k, []).append(i)
        payloads, index_groups = [], []
        for k, indices in by_k.items():
            n_chunks = min(self._search_pool.workers, len(indices))
            merged = self._merged_by_k[k]
            for c in range(n_chunks):
                chunk = indices[c::n_chunks]
                payloads.append(
                    ("search", [merged_inputs[i] for i in chunk], merged.rsk,
                     group_by_k[k], plan.method.value, plan.backend)
                )
                index_groups.append(chunk)
        t0 = time.perf_counter()
        groups = self._search_pool.run_shard_tasks_async(payloads).get()
        self._search_s += time.perf_counter() - t0
        results: List[Optional[MaxBRSTkNNResult]] = [None] * len(merged_inputs)
        for indices, group in zip(index_groups, groups):
            for i, result in zip(indices, group):
                results[i] = result
        return results  # type: ignore[return-value]

    def _group_threshold(self, pool_state, k: int) -> float:
        """``RSk(us)`` memoized per (walk, k) — central, O(pool)."""
        key = (pool_state.k, k)
        value = self._rsk_group_by_k.get(key)
        if value is None:
            value = derive_rsk_group(pool_state, k)
            self._rsk_group_by_k[key] = value
        return value

    def _scatter_refine(
        self, engaged: List[_Shard], pool_state, ks: List[int], backend: str
    ) -> None:
        """One refine round: every engaged shard, all missing ks.

        The k list is chunked across each shard pool's workers (like
        the shortlist round) so a multi-worker shard refines several ks
        concurrently; with one worker the whole list rides one payload
        and the traversal pool pickles once.
        """

        def payloads_for(shard: _Shard) -> List[tuple]:
            n_chunks = max(1, min(
                shard.pool.workers if shard.pool is not None else 1, len(ks)
            ))
            return [
                ("refine", pool_state.traversal, ks[c::n_chunks], backend,
                 shard.shard_id)
                for c in range(n_chunks)
            ]

        for shard in engaged:
            shard.stats.queue_depth_peak = max(
                shard.stats.queue_depth_peak, len(ks)
            )
        returned = self._dispatch(engaged, payloads_for)
        by_k: Dict[int, List] = {k: [] for k in ks}
        for shard, chunks in zip(engaged, returned):
            shard.stats.refine_tasks += len(ks)
            for partial in (p for chunk in chunks for p in chunk):
                shard.stats.refine_time_s += partial.time_s
                shard.rsk_by_k[partial.k] = partial.rsk
                by_k[partial.k].append(partial)
        for k in ks:
            self._merged_by_k[k] = merge_partials(by_k[k])

    def _scatter_shortlist(
        self,
        engaged: List[_Shard],
        queries: List[MaxBRSTkNNQuery],
        group_by_k: Dict[int, float],
        backend: str,
    ) -> List[List]:
        """One shortlist round: the whole batch fans out once per shard.

        Returns, per engaged shard, the per-query
        :class:`~repro.core.partial.ShortlistPartial` list in query
        order.  Shards with multi-worker pools split the batch into
        per-worker chunks; order is restored on collect.
        """

        def payloads_for(shard: _Shard) -> List[tuple]:
            rsk_by_k = {k: shard.rsk_by_k[k] for k in group_by_k}
            n_chunks = max(1, min(
                shard.pool.workers if shard.pool is not None else 1, len(queries)
            ))
            return [
                ("shortlist", self._su, queries[c::n_chunks], rsk_by_k,
                 group_by_k, backend, shard.shard_id)
                for c in range(n_chunks)
            ]

        for shard in engaged:
            shard.stats.queue_depth_peak = max(
                shard.stats.queue_depth_peak, len(queries)
            )
        returned = self._dispatch(engaged, payloads_for)
        results: List[List] = []
        for shard, chunks in zip(engaged, returned):
            n_chunks = len(chunks)
            ordered = [None] * len(queries)
            for c, chunk in enumerate(chunks):
                for offset, partial in enumerate(chunk):
                    ordered[c + offset * n_chunks] = partial
                    shard.stats.shortlist_time_s += partial.time_s
            shard.stats.queries += len(queries)
            results.append(ordered)
        return results

    def _dispatch(self, engaged: List[_Shard], payloads_for) -> List[List]:
        """Scatter payloads to every engaged shard, collect in order.

        Pool-backed shards receive their payloads via ``map_async`` —
        all dispatches happen before any collect, so shard pools run
        concurrently — while pool-less shards execute in-process (the
        deterministic fallback; identical partials either way because
        both run :func:`~repro.serve.pool.execute_shard_payload`).
        """
        async_handles: List[Tuple[int, object]] = []
        returned: List[Optional[List]] = [None] * len(engaged)
        plans: List[List[tuple]] = []
        for i, shard in enumerate(engaged):
            payloads = payloads_for(shard)
            plans.append(payloads)
            shard.stats.scatter_flushes += 1
            if shard.pool is not None:
                async_handles.append((i, shard.pool.run_shard_tasks_async(payloads)))
        for i, shard in enumerate(engaged):
            if shard.pool is None:
                returned[i] = [
                    execute_shard_payload(shard.engine.dataset, payload)
                    for payload in plans[i]
                ]
        for i, handle in async_handles:
            returned[i] = handle.get()
        return returned  # type: ignore[return-value]


def make_engine(
    dataset: Dataset, config: Optional[EngineConfig] = None
) -> Union[MaxBRSTkNNEngine, ShardedEngine]:
    """Build the right engine for ``config``: sharded iff ``num_shards > 1``."""
    config = config if config is not None else EngineConfig()
    if config.num_shards > 1:
        return ShardedEngine(dataset, config)
    return MaxBRSTkNNEngine(dataset, config)
