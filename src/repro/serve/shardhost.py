"""Shard host process: one engine replica behind a TCP frame loop.

``python -m repro shard-host --listen 127.0.0.1:0 --shards 4 ...``
builds the FULL dataset from the same workload flags and seed as the
coordinator, partitions it with the same
:class:`~repro.datagen.partition.UserPartitioner`, and keeps **all** N
shard datasets keyed by shard id (plus the full dataset for
whole-dataset rounds).  Dataset generation is deterministic, so every
host's replica of shard K is bitwise-identical to the coordinator's —
which is what makes re-scattering a failed round to *any* surviving
host trivially result-identical.

The host then serves the :class:`~repro.serve.transport.FrameCodec`
protocol over asyncio: a ``SCATTER`` frame carrying shard K's payload
round runs :func:`~repro.core.pipeline.execute_shard_payload` against
the local replica of shard K and answers one ``RESULT`` frame whose
body is the compact gather encoding
(:func:`~repro.core.payload.encode_gather_payload`) of the chunks —
the same bytes the fork-pool path moves, minus the fork.

Shared-memory discipline: the host is a *foreign attacher* of the
coordinator's arena (payloads carry
:class:`~repro.core.payload.ArenaRef` descriptors that resolve by
segment name), so startup enables
:func:`repro.storage.shm.set_untracked_attach` — attaching must not
register the coordinator's segments with this process's
resource_tracker, or the host's exit would unlink them under the
coordinator (see ``tests/storage/test_shm.py``).

Fault injection (the CI ``multihost-smoke`` / fault suites): the
``--fault`` vocabulary maps onto the socket fields of
:class:`~repro.serve.faults.FaultPlan` and is enforced HERE, in the
frame loop, so the coordinator's recovery ladder runs over real TCP
failures — dropped connections, stalled reads, refused service.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.pipeline import execute_shard_payload
from ..model.dataset import Dataset
from .faults import FaultPlan
from .transport import FrameCodec

__all__ = [
    "ShardHost",
    "WorkloadSpec",
    "make_workload",
    "parse_socket_fault",
    "run_host",
    "workload_spec_from_args",
]


# ----------------------------------------------------------------------
# Canonical workload construction (shared by cli, shard hosts, benches)
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Everything that determines a generated workload, bit for bit.

    The coordinator and every shard host build their datasets from the
    same spec; because generation is seed-deterministic, the replicas
    agree without shipping a byte of data.
    """

    dataset: str = "flickr"       # "flickr" | "yelp"
    objects: int = 2000
    users: int = 200
    ul: int = 3                   # keywords per user
    uw: int = 20                  # unique user keywords
    area: float = 5.0
    locations: int = 20
    measure: str = "LM"           # "LM" | "TF" | "KO"
    alpha: float = 0.5
    seed: int = 0

    def cli_args(self) -> list:
        """The ``repro`` workload flags reproducing this spec."""
        return [
            "--dataset", self.dataset,
            "--objects", str(self.objects),
            "--users", str(self.users),
            "--ul", str(self.ul),
            "--uw", str(self.uw),
            "--area", str(self.area),
            "--locations", str(self.locations),
            "--measure", self.measure,
            "--alpha", str(self.alpha),
            "--seed", str(self.seed),
        ]


def workload_spec_from_args(args) -> WorkloadSpec:
    """One spec from an argparse namespace with the workload flags."""
    return WorkloadSpec(
        dataset=args.dataset,
        objects=args.objects,
        users=args.users,
        ul=args.ul,
        uw=args.uw,
        area=args.area,
        locations=args.locations,
        measure=args.measure,
        alpha=args.alpha,
        seed=args.seed,
    )


def make_workload(spec: WorkloadSpec):
    """Build ``(dataset, workload)`` from a spec — the ONE construction
    path shared by the CLI, shard hosts and the multi-host bench."""
    from ..datagen import (
        candidate_locations,
        flickr_like,
        generate_users,
        yelp_like,
    )

    if spec.dataset == "flickr":
        objects, vocab = flickr_like(num_objects=spec.objects, seed=spec.seed)
    else:
        objects, vocab = yelp_like(
            num_objects=max(60, spec.objects // 6), seed=spec.seed
        )
    workload = generate_users(
        objects,
        num_users=spec.users,
        keywords_per_user=spec.ul,
        unique_keywords=spec.uw,
        area_side=spec.area,
        seed=spec.seed,
    )
    candidate_locations(workload, num_locations=spec.locations, seed=spec.seed)
    dataset = Dataset(
        objects, workload.users, relevance=spec.measure, alpha=spec.alpha,
        vocabulary=vocab,
    )
    return dataset, workload


# ----------------------------------------------------------------------
# Fault vocabulary (the shard-host --fault flag)
# ----------------------------------------------------------------------

def parse_socket_fault(spec: str) -> Optional[FaultPlan]:
    """``none`` | ``drop-frame:N`` | ``stall-read:N[:SECONDS]`` |
    ``refuse-accept`` → a socket-fault :class:`FaultPlan` (or None)."""
    if spec == "none":
        return None
    name, _, rest = spec.partition(":")
    if name == "drop-frame":
        return FaultPlan.drop_connection(int(rest or 0))
    if name == "stall-read":
        frame_s, _, stall = rest.partition(":")
        return FaultPlan.stall_read(
            int(frame_s or 0), stall_s=float(stall) if stall else 5.0
        )
    if name == "refuse-accept":
        return FaultPlan.refuse()
    raise ValueError(
        f"unknown socket fault {spec!r} (expected none, drop-frame:N, "
        f"stall-read:N[:S] or refuse-accept)"
    )


# ----------------------------------------------------------------------
# The host
# ----------------------------------------------------------------------

class ShardHost:
    """Frame-serving loop over local shard dataset replicas.

    Embeddable (the transport tests run hosts on background threads)
    and the engine behind the ``repro shard-host`` process.  One frame
    at a time per connection; independent connections are served
    concurrently by asyncio, which is what lets a retry connection
    proceed while a stalled one sleeps.
    """

    def __init__(
        self,
        datasets: Dict[int, Dataset],
        full_dataset: Dataset,
        fault: Optional[FaultPlan] = None,
    ) -> None:
        self.datasets = dict(datasets)
        self.full_dataset = full_dataset
        self.fault = fault
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        #: Scatter frames seen, process-wide — the deterministic clock
        #: the fire-once socket faults count against.
        self.scatter_frames = 0
        self._fired: set = set()

    @classmethod
    def from_spec(
        cls,
        spec: WorkloadSpec,
        num_shards: int,
        partitioner: str = "hash",
        fault: Optional[FaultPlan] = None,
    ) -> "ShardHost":
        """Replicate the coordinator's partition layout from its spec."""
        from ..datagen.partition import UserPartitioner

        dataset, _ = make_workload(spec)
        _, shard_datasets = UserPartitioner(partitioner, num_shards).split(dataset)
        return cls(dict(enumerate(shard_datasets)), dataset, fault=fault)

    def dataset_for(self, shard_id: int) -> Dataset:
        if shard_id in self.datasets:
            return self.datasets[shard_id]
        return self.full_dataset

    # -- lifecycle -----------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind and serve; returns the bound port (``port=0`` = ephemeral)."""
        self._server = await asyncio.start_server(self._handle, host, port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- frame loop ----------------------------------------------------
    def _fire_once(self, key: str) -> bool:
        if key in self._fired:
            return False
        self._fired.add(key)
        return True

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        fault = self.fault
        if fault is not None and fault.refuse_accept:
            # Persistent refusal of service: close before reading a
            # byte, every connection — the socket analog of pool_loss.
            writer.close()
            return
        try:
            while True:
                try:
                    header = await reader.readexactly(FrameCodec.HEADER_SIZE)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    return  # peer closed; this connection is done
                kind, flush_seq, shard_id, epoch, length = (
                    FrameCodec.unpack_header(header)
                )
                body = await reader.readexactly(length) if length else b""
                if kind == FrameCodec.PING:
                    writer.write(FrameCodec.pack(FrameCodec.PONG, flush_seq,
                                                 shard_id, epoch))
                    await writer.drain()
                    continue
                if kind != FrameCodec.SCATTER:
                    continue  # coordinators never send anything else
                frame_index = self.scatter_frames
                self.scatter_frames += 1
                if (
                    fault is not None
                    and fault.drop_connection_on_frame == frame_index
                    and self._fire_once("drop")
                ):
                    # Abort, don't linger: the coordinator must see a
                    # reset/EOF with its round in flight (WorkerCrashed).
                    writer.transport.abort()
                    return
                if (
                    fault is not None
                    and fault.stall_read_on_frame == frame_index
                    and self._fire_once("stall")
                ):
                    await asyncio.sleep(fault.stall_s)
                response = self._run_round(flush_seq, shard_id, epoch, body)
                writer.write(response)
                await writer.drain()
        finally:
            writer.close()

    def _run_round(
        self, flush_seq: int, shard_id: int, epoch: int, body: bytes
    ) -> bytes:
        """Execute one scatter round against the local replica.

        CPU-bound work runs inline (one round at a time per host, like
        a one-worker pool); a payload exception answers an ERROR frame
        so the coordinator can degrade the round instead of hanging.
        """
        from ..core.payload import encode_gather_payload

        try:
            payloads = FrameCodec.decode_body(body)
            dataset = self.dataset_for(shard_id)
            chunks = [
                encode_gather_payload(execute_shard_payload(dataset, payload))
                for payload in payloads
            ]
            rbody = FrameCodec.encode_body(chunks)
            return FrameCodec.pack(
                FrameCodec.RESULT, flush_seq, shard_id, epoch, rbody
            )
        except Exception as exc:  # noqa: BLE001 - answer typed, keep serving
            rbody = FrameCodec.encode_body((type(exc).__name__, str(exc)))
            return FrameCodec.pack(
                FrameCodec.ERROR, flush_seq, shard_id, epoch, rbody
            )


def run_host(
    spec: WorkloadSpec,
    num_shards: int,
    *,
    partitioner: str = "hash",
    listen: Tuple[str, int] = ("127.0.0.1", 0),
    fault: Optional[FaultPlan] = None,
    arena: Optional[str] = None,
) -> int:
    """Process entry point behind ``repro shard-host`` (blocks forever).

    Prints ``SHARDHOST LISTENING <port>`` once bound — the line the
    bench and CI parse to learn an ephemeral port.
    """
    from ..storage.shm import ShmArena, set_untracked_attach

    # Foreign attacher: ArenaRefs in scatter payloads resolve against
    # the COORDINATOR's segments; registering them with this process's
    # resource_tracker would unlink them under the coordinator when
    # this host exits.
    set_untracked_attach(True)
    if arena:
        ShmArena.attach(arena).close()  # fail fast on a bad --arena
    host = ShardHost.from_spec(spec, num_shards, partitioner, fault=fault)

    async def _main() -> None:
        port = await host.start(listen[0], listen[1])
        print(f"SHARDHOST LISTENING {port}", flush=True)
        await host.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0
