"""Async micro-batching serving layer on top of the batch query engine.

The top layer of the typed API (see ``repro/core/config.py`` and
``repro/core/planner.py`` for the two below):

* :class:`ServerConfig` — micro-batch window (``max_batch`` /
  ``max_wait_ms``), persistent pool size, and the
  :class:`~repro.core.config.QueryOptions` every request runs with;
* :class:`PersistentWorkerPool` — fork-once worker pool whose workers
  inherit the dataset (and pre-built ``DatasetArrays``) at startup,
  amortizing the per-call fork cost of ``query_batch(workers=N)``;
* :class:`MaxBRSTkNNServer` — asyncio front-end: ``await
  server.submit(query)`` futures are collected into micro-batches
  (flush on ``max_batch`` or ``max_wait_ms``; ``max_wait_ms="auto"``
  tunes the window from the observed arrival rate) and executed through
  ``query_batch``, so concurrent callers share the top-k phase without
  coordinating;
* :class:`ShardedEngine` — N partitioned engines over user shards with
  an exact scatter/gather merge; the server takes either engine type
  unchanged (``make_engine`` picks by ``EngineConfig.num_shards``).

>>> async with MaxBRSTkNNServer(engine) as server:
...     results = await asyncio.gather(*(server.submit(q) for q in qs))
"""

from .config import (
    AdaptiveWaitController,
    DeadlinePolicy,
    RetryPolicy,
    ServerConfig,
    ServerStats,
)
from .errors import (
    FlushDeadlineExceeded,
    PoolFailure,
    PoolUnavailable,
    ScatterTaskError,
    ServerOverloaded,
    ServerStopped,
    ServingError,
    WorkerCrashed,
)
from .faults import FaultPlan, InjectedFault
from .pool import PersistentWorkerPool, PoolHealth, PoolState
from .server import MaxBRSTkNNServer
from .sharded import ShardedEngine, make_engine
from .shardhost import ShardHost, WorkloadSpec, make_workload
from .transport import FrameCodec, ShardHostClient, ShardRegistry, SocketExecutor

__all__ = [
    "AdaptiveWaitController",
    "DeadlinePolicy",
    "FaultPlan",
    "FlushDeadlineExceeded",
    "FrameCodec",
    "InjectedFault",
    "MaxBRSTkNNServer",
    "PersistentWorkerPool",
    "PoolFailure",
    "PoolHealth",
    "PoolState",
    "PoolUnavailable",
    "RetryPolicy",
    "ScatterTaskError",
    "ServerConfig",
    "ServerOverloaded",
    "ServerStats",
    "ServerStopped",
    "ServingError",
    "ShardHost",
    "ShardHostClient",
    "ShardRegistry",
    "ShardedEngine",
    "SocketExecutor",
    "WorkerCrashed",
    "WorkloadSpec",
    "make_engine",
    "make_workload",
]
