"""Persistent fork pool for phase-2 candidate selection.

``query_batch(workers=N)`` forks a fresh pool on every call — workers
inherit the indexes through copy-on-write for free, but the fork +
teardown cost is paid per batch, which PR 1 left on the table.  A
serving layer answers many batches over one immutable dataset, so this
module forks **once at startup**: workers inherit the dataset and the
pre-built :class:`~repro.core.kernels.DatasetArrays` (built *before*
the fork so the arrays live in shared copy-on-write pages), and each
batch ships only small per-chunk payloads through the pool's queues —
queries plus the shared phase-1 thresholds, which the batch executor
groups so each :class:`SharedTopK` is pickled once per worker chunk,
not once per query.

Workers can also carry an optional **context** object inherited the
same way — the sharded engine's root search pool registers the
MIUR-tree here so ``indexed_search`` payloads
(:func:`repro.core.pipeline.execute_shard_payload`) can run the
best-first search in-worker against read-only ledger stores.

Requires the ``fork`` start method (Linux/macOS).  Construction raises
:class:`RuntimeError` where unavailable — callers fall back to
in-process execution (``ServerConfig.pool_workers=0``).
"""

from __future__ import annotations

import contextlib
import itertools
import multiprocessing
import os
import signal
import threading
import warnings
import weakref
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..core.batch import SharedTopK, _select_chunk
from ..core.kernels import HAS_NUMPY, arrays_for
from ..core.pipeline import execute_shard_payload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.query import MaxBRSTkNNQuery, MaxBRSTkNNResult
    from ..model.dataset import Dataset

__all__ = ["PersistentWorkerPool", "execute_shard_payload"]

#: One phase-2 work chunk: several queries sharing one phase-1 state,
#: so the (O(num_users)-sized) SharedTopK pickles once per chunk.
Payload = Tuple[List["MaxBRSTkNNQuery"], SharedTopK, str, str, str]

#: Parent-side registry of pool (dataset, context) pairs, keyed by a
#: per-pool token.  Forked workers inherit the whole registry through
#: copy-on-write and the initializer resolves their token into
#: ``_WORKER_DATASET`` / ``_WORKER_CONTEXT`` — only the *token* (an
#: int) ever crosses the worker pipe.  Passing the dataset itself as
#: Pool ``initargs`` would *pickle* it per worker, silently dropping
#: the pre-built DatasetArrays (Dataset.__getstate__ excludes them, and
#: DatasetArrays refuses to pickle outright) and making every worker
#: rebuild them: the exact waste this pool exists to avoid.  A registry
#: (rather than one module global) keeps late worker respawns and
#: concurrent pools correct — whenever a child forks, its registry
#: snapshot holds every live pool's dataset.  The regression test
#: ``tests/serve/test_pool.py`` asserts workers inherit, not rebuild.
_WORKER_DATASET = None
_WORKER_CONTEXT = None
_FORK_DATASETS: Dict[int, tuple] = {}
_FORK_TOKENS = itertools.count()


def _init_worker(token: int) -> None:
    global _WORKER_DATASET, _WORKER_CONTEXT
    _WORKER_DATASET, _WORKER_CONTEXT = _FORK_DATASETS[token]


def _run_payload(payload: Payload) -> List["MaxBRSTkNNResult"]:
    return _select_chunk(_WORKER_DATASET, payload)


#: One shard-scatter work item: see
#: :func:`repro.core.pipeline.execute_shard_payload` for the payload
#: kinds.  The shard's dataset itself never travels: workers hold it
#: from the fork (COW), in-process execution passes it explicitly.
ShardPayload = Tuple


def _run_shard_payload(payload: ShardPayload):
    return execute_shard_payload(
        _WORKER_DATASET, payload, context=_WORKER_CONTEXT
    )


class PersistentWorkerPool:
    """Long-lived fork pool bound to one dataset (plus optional context).

    Parameters
    ----------
    dataset:
        The dataset every payload is answered against.  Must not be
        mutated after the pool is built (workers hold the pre-fork
        snapshot).
    workers:
        Number of worker processes (>= 1).
    context:
        Optional extra object workers inherit via copy-on-write (the
        sharded engine's root search pool passes the MIUR-tree so
        indexed-search payloads can run in-worker).
    """

    def __init__(self, dataset: "Dataset", workers: int, context=None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "PersistentWorkerPool requires the 'fork' start method"
            )
        if HAS_NUMPY:
            arrays_for(dataset)  # build before forking: shared via COW
        self.dataset = dataset
        self.workers = workers
        self.context = context
        ctx = multiprocessing.get_context("fork")
        self._token = next(_FORK_TOKENS)
        _FORK_DATASETS[self._token] = (dataset, context)
        # Workers fork inside Pool() and snapshot the registry (and the
        # arrays hanging off the dataset) via copy-on-write; initargs
        # carries only the token.
        self._pool = ctx.Pool(
            workers, initializer=_init_worker, initargs=(self._token,)
        )
        self._closed = False
        # Safety net for pools dropped without close(): the finalizer
        # evicts the registry entry so a leaked pool cannot pin the
        # dataset (and its dense arrays) for the process lifetime.
        self._registry_finalizer = weakref.finalize(
            self, _FORK_DATASETS.pop, self._token, None
        )

    # ------------------------------------------------------------------
    def run_selection(
        self, payloads: Sequence[Payload]
    ) -> List[List["MaxBRSTkNNResult"]]:
        """Run phase 2 for every chunk, preserving chunk and query order."""
        if self._closed:
            raise RuntimeError("pool is closed")
        return self._pool.map(_run_payload, list(payloads))

    def run_shard_tasks_async(self, payloads: Sequence[ShardPayload]):
        """Dispatch shard scatter tasks without blocking.

        Returns the ``multiprocessing`` async result; the sharded
        executor dispatches to *every* shard's pool first and only then
        collects, so shards run concurrently even with one worker each.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        return self._pool.map_async(_run_shard_payload, list(payloads))

    def close(self, timeout_s: Optional[float] = None) -> None:
        """Shut the workers down (idempotent).

        ``timeout_s`` bounds the shutdown: ``Pool.join`` waits for every
        worker to read its close sentinel, so a worker killed or hung
        mid-task stalls an unbounded join *forever*.  With a timeout the
        join runs in a helper thread; if it misses the deadline the pool
        is ``terminate()``d with a warning, and workers that survive
        even that (e.g. stopped processes, which leave SIGTERM pending)
        are SIGKILLed.  ``None`` keeps the unbounded wait.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._pool.close()
            if timeout_s is None:
                self._pool.join()
            else:
                self._join_bounded(timeout_s)
        finally:
            self._registry_finalizer()

    def _join_bounded(self, timeout_s: float) -> None:
        joiner = threading.Thread(target=self._pool.join, daemon=True)
        joiner.start()
        joiner.join(timeout_s)
        if not joiner.is_alive():
            return
        warnings.warn(
            f"worker pool did not shut down within {timeout_s:.1f}s "
            f"(worker killed or hung mid-task?); terminating its workers",
            RuntimeWarning,
            stacklevel=3,
        )
        # Pool.terminate() itself joins the workers after SIGTERMing
        # them, and a stopped worker leaves SIGTERM pending without
        # dying — run it in a helper thread too so close() stays
        # bounded, then SIGKILL whatever is still alive (SIGKILL cannot
        # be blocked and fells stopped processes as well).
        terminator = threading.Thread(target=self._pool.terminate, daemon=True)
        terminator.start()
        terminator.join(timeout_s)
        if terminator.is_alive() or joiner.is_alive():
            for proc in list(getattr(self._pool, "_pool", None) or []):
                if proc.is_alive():
                    with contextlib.suppress(ProcessLookupError, PermissionError):
                        os.kill(proc.pid, signal.SIGKILL)
            terminator.join(timeout_s)
            joiner.join(timeout_s)

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
