"""Supervised persistent fork pool for scatter rounds.

``query_batch(workers=N)`` forks a fresh pool on every call — workers
inherit the indexes through copy-on-write for free, but the fork +
teardown cost is paid per batch, which PR 1 left on the table.  A
serving layer answers many batches over one immutable dataset, so this
module forks **once at startup**: workers inherit the dataset and the
pre-built :class:`~repro.core.kernels.DatasetArrays` (built *before*
the fork so the arrays live in shared copy-on-write pages), and each
batch ships only small per-chunk payloads through the pool's queues —
queries plus the shared phase-1 thresholds, which the batch executor
groups so each :class:`SharedTopK` is pickled once per worker chunk,
not once per query.

Workers can also carry an optional **context** object inherited the
same way — the sharded engine's root search pool registers the
MIUR-tree here so ``indexed_search`` payloads
(:func:`repro.core.pipeline.execute_shard_payload`) can run the
best-first search in-worker against read-only ledger stores.

**Supervision.**  A bare ``multiprocessing.Pool`` has a deadly failure
mode for serving: a worker that dies mid-task loses the task forever
and the round's ``AsyncResult`` simply *never* becomes ready — wedging
the flush and every future parked on it.  The pool therefore never
hands out raw async results on the serving path; rounds flow through

* :meth:`dispatch` — start a round, returning a :class:`PoolDispatch`
  ticket (so a sharded executor can start every shard's round before
  collecting any);
* :meth:`collect` — await one ticket with *supervision*: polls worker
  liveness (any exitcode outside {None, 0}, or a replacement pid
  appearing) and the :class:`~repro.serve.config.DeadlinePolicy`
  deadline, raising typed :class:`~repro.serve.errors.PoolFailure`
  subclasses instead of hanging;
* :meth:`run_supervised` — dispatch + collect + the
  :class:`~repro.serve.config.RetryPolicy` ladder: worker death ⇒
  :meth:`respawn` (capped exponential backoff) and re-dispatch; task
  exception ⇒ plain re-dispatch; budget exhausted or pool broken ⇒ a
  :class:`~repro.core.pipeline.ScatterFailure` the executors catch to
  degrade in-process.

Health is typed and observable: :class:`PoolHealth` carries the
:class:`PoolState` machine (HEALTHY → RESPAWNING → HEALTHY | BROKEN,
→ CLOSED) plus monotone counters (respawns, worker deaths, deadline
hits, retries) that the server aggregates onto ``ServerStats``.

Requires the ``fork`` start method (Linux/macOS).  Construction raises
:class:`RuntimeError` where unavailable — callers fall back to
in-process execution (``ServerConfig.pool_workers=0``).
"""

from __future__ import annotations

import contextlib
import enum
import itertools
import multiprocessing
import os
import signal
import threading
import time
import warnings
import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..core.batch import SharedTopK, _select_chunk
from ..core.kernels import HAS_NUMPY, arrays_for
from ..core.payload import encode_gather_payload
from ..core.pipeline import execute_shard_payload
from .config import DeadlinePolicy, RetryPolicy
from .errors import (
    FlushDeadlineExceeded,
    PoolUnavailable,
    ScatterTaskError,
    WorkerCrashed,
)
from .faults import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.query import MaxBRSTkNNQuery, MaxBRSTkNNResult
    from ..model.dataset import Dataset

__all__ = [
    "PersistentWorkerPool",
    "PoolDispatch",
    "PoolHealth",
    "PoolState",
    "execute_shard_payload",
]

#: One phase-2 work chunk: several queries sharing one phase-1 state,
#: so the (O(num_users)-sized) SharedTopK pickles once per chunk.
Payload = Tuple[List["MaxBRSTkNNQuery"], SharedTopK, str, str, str]

#: Parent-side registry of pool (dataset, context, faults, pool_id,
#: arena_name) tuples, keyed by a per-pool token.  Forked workers inherit the whole
#: registry through copy-on-write and the initializer resolves their
#: token into ``_WORKER_DATASET`` / ``_WORKER_CONTEXT`` (plus the
#: fault-injection plan and pool identity) — only the *token* and the
#: pool generation (two ints) ever cross the worker pipe.  Passing the
#: dataset itself as Pool ``initargs`` would *pickle* it per worker,
#: silently dropping the pre-built DatasetArrays (Dataset.__getstate__
#: excludes them, and DatasetArrays refuses to pickle outright) and
#: making every worker rebuild them: the exact waste this pool exists
#: to avoid.  A registry (rather than one module global) keeps late
#: worker respawns and concurrent pools correct — whenever a child
#: forks, its registry snapshot holds every live pool's dataset.  The
#: regression test ``tests/serve/test_pool.py`` asserts workers
#: inherit, not rebuild.
_WORKER_DATASET = None
_WORKER_CONTEXT = None
_WORKER_FAULTS: Optional[FaultPlan] = None
_WORKER_POOL_ID: Optional[int] = None
_WORKER_GENERATION = 0
_WORKER_TASK_INDEX = 0
#: Name of the shm arena this worker verified it can map (None when the
#: pool runs without one).  Set by the initializer's attach probe — on
#: the *first* generation it proves the fork inherited live mappings,
#: and on every respawned generation N+1 it proves the worker can
#: re-attach by name alone (the zero-copy tier's respawn contract).
_WORKER_ARENA_NAME: Optional[str] = None
_FORK_DATASETS: Dict[int, tuple] = {}
_FORK_TOKENS = itertools.count()


def _init_worker(token: int, generation: int = 0) -> None:
    global _WORKER_DATASET, _WORKER_CONTEXT, _WORKER_FAULTS
    global _WORKER_POOL_ID, _WORKER_GENERATION, _WORKER_TASK_INDEX
    global _WORKER_ARENA_NAME
    entry = _FORK_DATASETS[token]
    (_WORKER_DATASET, _WORKER_CONTEXT, _WORKER_FAULTS, _WORKER_POOL_ID,
     arena_name) = entry
    _WORKER_GENERATION = generation
    _WORKER_TASK_INDEX = 0
    _WORKER_ARENA_NAME = None
    if arena_name is not None:
        # Re-attach by name, not by inherited state: a respawned worker
        # (generation > 0) was forked *after* SIGKILL recovery and must
        # be able to map the arena from its name alone.  The probe
        # raises if the arena is gone — failing the spawn loudly beats
        # serving refs that cannot resolve.
        from ..storage.shm import ShmArena

        ShmArena.attach(arena_name).close()
        _WORKER_ARENA_NAME = arena_name


def _payload_shard_id(payload: tuple) -> Optional[int]:
    """Shard id carried by a scatter payload (None for selection /
    search payloads, which run on the root pool)."""
    if not isinstance(payload, tuple) or not payload:
        return None
    if payload[0] == "refine":
        return payload[4]
    if payload[0] == "shortlist":
        return payload[6]
    return None


def _maybe_inject(payload) -> None:
    """Worker-side fault hook: counts this worker's tasks and fires the
    inherited :class:`FaultPlan` (if any, and if armed for this pool
    generation).  One ``is None`` check when no plan is armed."""
    global _WORKER_TASK_INDEX
    if _WORKER_FAULTS is None:
        return
    index = _WORKER_TASK_INDEX
    _WORKER_TASK_INDEX = index + 1
    _WORKER_FAULTS.worker_hook(
        index, _WORKER_GENERATION, _WORKER_POOL_ID, _payload_shard_id(payload)
    )


def _run_payload(payload: Payload) -> List["MaxBRSTkNNResult"]:
    _maybe_inject(payload)
    return _select_chunk(_WORKER_DATASET, payload)


#: One shard-scatter work item: see
#: :func:`repro.core.pipeline.execute_shard_payload` for the payload
#: kinds.  The shard's dataset itself never travels: workers hold it
#: from the fork (COW), in-process execution passes it explicitly.
ShardPayload = Tuple


def _run_shard_payload(payload: ShardPayload):
    _maybe_inject(payload)
    chunk = execute_shard_payload(
        _WORKER_DATASET, payload, context=_WORKER_CONTEXT
    )
    # Gather funnel: refine/shortlist chunks cross the worker->parent
    # pipe as ONE binary block; everything else returns unchanged.  The
    # executors decode at their collect sites.
    return encode_gather_payload(chunk)


class PoolState(enum.Enum):
    """Supervision state machine of one :class:`PersistentWorkerPool`."""

    HEALTHY = "healthy"        # workers up, rounds dispatchable
    RESPAWNING = "respawning"  # old workers torn down, new ones forking
    BROKEN = "broken"          # respawn failed: terminal until rebuilt
    CLOSED = "closed"          # close() ran (terminal)


@dataclass(slots=True)
class PoolHealth:
    """Typed, observable health of one pool (monotone counters)."""

    state: PoolState = PoolState.HEALTHY
    generation: int = 0        # bumped by every successful respawn
    respawns: int = 0          # successful worker-set rebuilds
    worker_deaths: int = 0     # rounds aborted by a dead worker
    deadline_hits: int = 0     # rounds aborted by the flush deadline
    retries: int = 0           # rounds re-dispatched by run_supervised
    consecutive_failures: int = 0  # backoff driver; reset on success
    last_error: Optional[str] = None

    def snapshot(self) -> dict:
        return {
            "state": self.state.value,
            "generation": self.generation,
            "respawns": self.respawns,
            "worker_deaths": self.worker_deaths,
            "deadline_hits": self.deadline_hits,
            "retries": self.retries,
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error,
        }


@dataclass(slots=True)
class PoolDispatch:
    """Ticket for one in-flight scatter round (collect() redeems it)."""

    async_result: object
    payloads: list
    kind: str                     # "shard" | "selection"
    generation: int               # pool generation it was dispatched on
    deadline_s: Optional[float]   # per-round budget (None = unbounded)
    started_s: float = field(default_factory=time.monotonic)


class PersistentWorkerPool:
    """Long-lived supervised fork pool bound to one dataset.

    Parameters
    ----------
    dataset:
        The dataset every payload is answered against.  Must not be
        mutated after the pool is built (workers hold the pre-fork
        snapshot).
    workers:
        Number of worker processes (>= 1).
    context:
        Optional extra object workers inherit via copy-on-write (the
        sharded engine's root search pool passes the MIUR-tree so
        indexed-search payloads can run in-worker).
    retry / deadline:
        Supervision policies (:class:`~repro.serve.config.RetryPolicy`,
        :class:`~repro.serve.config.DeadlinePolicy`); defaults retry
        once and bound every round at 30 s.
    faults:
        Optional :class:`~repro.serve.faults.FaultPlan` inherited by the
        workers — deterministic fault injection for tests/CI.
    pool_id:
        Identity for fault scoping and health reporting (shard id for
        shard pools, ``SEARCH_POOL_ID`` for the root search pool).
    arena_name:
        Name of the engine-owned :class:`~repro.storage.shm.ShmArena`
        (``None`` without one).  Every worker generation's initializer
        probes an attach-by-name against it, so respawned workers prove
        they can map the arena without relying on fork inheritance.
    """

    def __init__(
        self,
        dataset: "Dataset",
        workers: int,
        context=None,
        *,
        retry: Optional[RetryPolicy] = None,
        deadline: Optional[DeadlinePolicy] = None,
        faults: Optional[FaultPlan] = None,
        pool_id: Optional[int] = None,
        arena_name: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "PersistentWorkerPool requires the 'fork' start method"
            )
        if HAS_NUMPY:
            arrays_for(dataset)  # build before forking: shared via COW
        self.dataset = dataset
        self.workers = workers
        self.context = context
        self.retry = retry if retry is not None else RetryPolicy()
        self.deadline = deadline if deadline is not None else DeadlinePolicy()
        self.faults = faults
        self.pool_id = pool_id
        self.arena_name = arena_name
        self.health = PoolHealth()
        self._ctx = multiprocessing.get_context("fork")
        #: Reentrant: close() may run from a thread while respawn holds
        #: the lock, and respawn's spawn path re-enters helpers.
        self._lock = threading.RLock()
        self._token = next(_FORK_TOKENS)
        _FORK_DATASETS[self._token] = (
            dataset, context, faults, pool_id, arena_name
        )
        self._closed = False
        self._pool = None
        self._known_pids: set = set()
        # Safety net for pools dropped without close(): the finalizer
        # evicts the registry entry so a leaked pool cannot pin the
        # dataset (and its dense arrays) for the process lifetime.
        self._registry_finalizer = weakref.finalize(
            self, _FORK_DATASETS.pop, self._token, None
        )
        self._spawn()

    # ------------------------------------------------------------------
    # Worker-set lifecycle
    # ------------------------------------------------------------------
    def _spawn(self) -> None:
        """Fork a fresh worker set for the current generation.

        Workers fork inside Pool() and snapshot the registry (and the
        arrays hanging off the dataset) via copy-on-write; initargs
        carries only the token and generation.
        """
        self._pool = self._ctx.Pool(
            self.workers,
            initializer=_init_worker,
            initargs=(self._token, self.health.generation),
        )
        self._known_pids = {proc.pid for proc in self._pool._pool}

    def _worker_death_detected(self) -> bool:
        """Did any worker of the current set die abnormally?

        Two signals, because ``multiprocessing.Pool``'s own handler
        thread silently *replaces* dead workers: an exitcode outside
        {None, 0} still in the table, or a pid we did not fork (the
        replacement).  Either way the dying worker's task is lost and
        the in-flight round will never complete.
        """
        procs = list(getattr(self._pool, "_pool", None) or [])
        died = any(proc.exitcode not in (None, 0) for proc in procs)
        fresh = {proc.pid for proc in procs} - self._known_pids
        return died or bool(fresh)

    def respawn(self) -> None:
        """Tear the current worker set down and fork a new generation.

        Sleeps the :class:`RetryPolicy` backoff first (capped
        exponential in consecutive failures), so a persistently dying
        worker set cannot fork-bomb the host.  A failed respawn marks
        the pool BROKEN — terminal — and raises
        :class:`PoolUnavailable`.
        """
        with self._lock:
            if self._closed:
                raise PoolUnavailable("pool is closed; cannot respawn")
            if self.health.state is PoolState.BROKEN:
                raise PoolUnavailable("pool is broken (previous respawn failed)")
            plan = self.faults
            if plan is not None and plan.break_respawn and plan.armed(
                self.health.generation, self.pool_id
            ):
                self.health.state = PoolState.BROKEN
                self.health.last_error = "injected respawn failure"
                raise PoolUnavailable(
                    "injected respawn failure (FaultPlan.break_respawn)"
                )
            self.health.state = PoolState.RESPAWNING
            old_pool, self._pool = self._pool, None
            if old_pool is not None:
                self._terminate_bounded(old_pool)
            backoff = self.retry.backoff_s(self.health.consecutive_failures)
            if backoff > 0:
                time.sleep(backoff)
            self.health.generation += 1
            try:
                self._spawn()
            except Exception as exc:
                self.health.state = PoolState.BROKEN
                self.health.last_error = f"respawn failed: {exc!r}"
                raise PoolUnavailable(
                    f"pool respawn failed: {exc!r}"
                ) from exc
            self.health.state = PoolState.HEALTHY
            self.health.respawns += 1

    def _terminate_bounded(self, pool, timeout_s: float = 5.0) -> None:
        """Terminate a (possibly wedged) worker set without hanging.

        ``Pool.terminate()`` joins its workers after SIGTERMing them,
        and a stopped worker leaves SIGTERM pending without dying — run
        it in a helper thread, then SIGKILL whatever survives (SIGKILL
        cannot be blocked and fells stopped processes too).
        """
        terminator = threading.Thread(target=pool.terminate, daemon=True)
        terminator.start()
        terminator.join(timeout_s)
        if terminator.is_alive():
            for proc in list(getattr(pool, "_pool", None) or []):
                if proc.is_alive():
                    with contextlib.suppress(ProcessLookupError, PermissionError):
                        os.kill(proc.pid, signal.SIGKILL)
            terminator.join(timeout_s)

    @property
    def available(self) -> bool:
        """Can a round be dispatched here right now?"""
        return not self._closed and self.health.state in (
            PoolState.HEALTHY, PoolState.RESPAWNING
        )

    # ------------------------------------------------------------------
    # Supervised rounds
    # ------------------------------------------------------------------
    def dispatch(self, payloads: Sequence, kind: str = "shard") -> PoolDispatch:
        """Start one scatter round; returns the ticket for collect().

        Dispatch-only so a sharded executor can start every shard's
        round before collecting any — shards run concurrently even with
        one worker each.
        """
        payloads = list(payloads)
        with self._lock:
            if self._closed:
                raise PoolUnavailable("pool is closed")
            if self.health.state is PoolState.BROKEN:
                raise PoolUnavailable("pool is broken (respawn failed)")
            plan = self.faults
            if plan is not None and plan.break_dispatch and plan.armed(
                self.health.generation, self.pool_id
            ):
                self.health.consecutive_failures += 1
                self.health.last_error = "injected pool loss at dispatch"
                raise WorkerCrashed(
                    "injected pool loss (FaultPlan.break_dispatch)"
                )
            fn = _run_payload if kind == "selection" else _run_shard_payload
            async_result = self._pool.map_async(fn, payloads)
            return PoolDispatch(
                async_result=async_result,
                payloads=payloads,
                kind=kind,
                generation=self.health.generation,
                deadline_s=self.deadline.flush_deadline_s,
            )

    def collect(self, dispatch: PoolDispatch) -> list:
        """Await one round under supervision (never hangs).

        Polls the async result against worker liveness and the deadline;
        raises :class:`WorkerCrashed` / :class:`FlushDeadlineExceeded` /
        :class:`PoolUnavailable` instead of waiting on a result that
        can never arrive.  Task exceptions surface as
        :class:`ScatterTaskError` with the original chained.
        """
        async_result = dispatch.async_result
        end_s = (
            dispatch.started_s + dispatch.deadline_s
            if dispatch.deadline_s is not None else None
        )
        while True:
            if async_result.ready():
                try:
                    chunks = async_result.get()
                except Exception as exc:
                    self.health.consecutive_failures += 1
                    self.health.last_error = f"task raised: {exc!r}"
                    raise ScatterTaskError(
                        f"scatter task raised in worker: {exc!r}"
                    ) from exc
                self.health.consecutive_failures = 0
                return chunks
            if self._closed or dispatch.generation != self.health.generation:
                raise PoolUnavailable(
                    "pool closed or respawned under an in-flight round"
                )
            if self._worker_death_detected():
                self.health.worker_deaths += 1
                self.health.consecutive_failures += 1
                self.health.last_error = "worker process died mid-round"
                raise WorkerCrashed(
                    "worker process died mid-round; its tasks are lost"
                )
            if end_s is not None and time.monotonic() >= end_s:
                self.health.deadline_hits += 1
                self.health.consecutive_failures += 1
                self.health.last_error = (
                    f"round missed its {dispatch.deadline_s:.3f}s deadline"
                )
                raise FlushDeadlineExceeded(
                    f"scatter round exceeded its "
                    f"{dispatch.deadline_s:.3f}s flush deadline"
                )
            async_result.wait(self.deadline.poll_interval_s)

    def run_supervised(
        self,
        payloads: Sequence,
        kind: str = "shard",
        dispatch: Optional[PoolDispatch] = None,
    ) -> list:
        """Dispatch + collect + the retry ladder, in one call.

        Worker death or a deadline hit respawns the worker set (capped
        backoff) and re-dispatches the same payloads; a task exception
        re-dispatches without respawn (the workers are fine).  Retries
        beyond ``RetryPolicy.max_retries``, or a pool gone terminal,
        raise the last failure — a
        :class:`~repro.core.pipeline.ScatterFailure` the executors
        catch to degrade the round to in-process execution.  Pass a
        pre-made ``dispatch`` ticket to supervise a round already
        started via :meth:`dispatch`.
        """
        payloads = list(payloads)
        attempts = self.retry.max_retries + 1
        failure: Optional[Exception] = None
        for attempt in range(attempts):
            try:
                ticket = (
                    dispatch if attempt == 0 and dispatch is not None
                    else self.dispatch(payloads, kind)
                )
                return self.collect(ticket)
            except PoolUnavailable:
                raise  # terminal: no pool to retry on
            except (WorkerCrashed, FlushDeadlineExceeded) as exc:
                failure = exc
                if attempt + 1 >= attempts:
                    break
                self.respawn()  # PoolUnavailable from here propagates
                self.health.retries += 1
            except ScatterTaskError as exc:
                failure = exc
                if attempt + 1 >= attempts:
                    break
                self.health.retries += 1
        assert failure is not None
        raise failure

    # ------------------------------------------------------------------
    # Round entry points
    # ------------------------------------------------------------------
    def run_selection(
        self, payloads: Sequence[Payload]
    ) -> List[List["MaxBRSTkNNResult"]]:
        """Run phase 2 for every chunk, preserving chunk and query order
        (supervised: worker death respawns and retries, a hung round
        hits the deadline instead of wedging the flush)."""
        if self._closed:
            raise PoolUnavailable("pool is closed")
        return self.run_supervised(payloads, kind="selection")

    def run_shard_tasks_async(self, payloads: Sequence[ShardPayload]):
        """Raw (unsupervised) dispatch — legacy escape hatch.

        Returns the bare ``multiprocessing`` async result: no worker
        liveness checks, no deadline, no retry — a worker death wedges
        ``get()`` forever.  Production call sites must use
        :meth:`dispatch`/:meth:`collect`/:meth:`run_supervised`; lint
        rule FT501 enforces exactly that.
        """
        if self._closed:
            raise PoolUnavailable("pool is closed")
        return self._pool.map_async(_run_shard_payload, list(payloads))

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, timeout_s: Optional[float] = None) -> None:
        """Shut the workers down (idempotent, safe during respawn).

        ``timeout_s`` bounds the shutdown: ``Pool.join`` waits for every
        worker to read its close sentinel, so a worker killed or hung
        mid-task stalls an unbounded join *forever*.  With a timeout the
        join runs in a helper thread; if it misses the deadline the pool
        is ``terminate()``d with a warning, and workers that survive
        even that (e.g. stopped processes, which leave SIGTERM pending)
        are SIGKILLed.  ``None`` keeps the unbounded wait.

        Double-close is a no-op, and closing while a respawn has the
        worker set torn down (``_pool is None``) or mid-rebuild must
        not raise — the respawner's generation check surfaces
        :class:`PoolUnavailable` to its own caller.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self.health.state = PoolState.CLOSED
            pool, self._pool = self._pool, None
        try:
            if pool is not None:
                # Pool.close() raises ValueError if the pool is already
                # terminating (a respawn raced us); the terminate path
                # below still bounds the teardown.
                with contextlib.suppress(ValueError):
                    pool.close()
                if timeout_s is None:
                    pool.join()
                else:
                    self._join_bounded(pool, timeout_s)
        finally:
            self._registry_finalizer()

    def _join_bounded(self, pool, timeout_s: float) -> None:
        joiner = threading.Thread(target=pool.join, daemon=True)
        joiner.start()
        joiner.join(timeout_s)
        if not joiner.is_alive():
            return
        warnings.warn(
            f"worker pool did not shut down within {timeout_s:.1f}s "
            f"(worker killed or hung mid-task?); terminating its workers",
            RuntimeWarning,
            stacklevel=3,
        )
        self._terminate_bounded(pool, timeout_s)
        joiner.join(timeout_s)

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
