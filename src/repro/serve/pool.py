"""Persistent fork pool for phase-2 candidate selection.

``query_batch(workers=N)`` forks a fresh pool on every call — workers
inherit the indexes through copy-on-write for free, but the fork +
teardown cost is paid per batch, which PR 1 left on the table.  A
serving layer answers many batches over one immutable dataset, so this
module forks **once at startup**: workers inherit the dataset and the
pre-built :class:`~repro.core.kernels.DatasetArrays` (built *before*
the fork so the arrays live in shared copy-on-write pages), and each
batch ships only small per-chunk payloads through the pool's queues —
queries plus the shared phase-1 thresholds, which the batch executor
groups so each :class:`SharedTopK` is pickled once per worker chunk,
not once per query.

Requires the ``fork`` start method (Linux/macOS).  Construction raises
:class:`RuntimeError` where unavailable — callers fall back to
in-process execution (``ServerConfig.pool_workers=0``).
"""

from __future__ import annotations

import itertools
import multiprocessing
import weakref
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from ..core.batch import SharedTopK, _select_one
from ..core.kernels import HAS_NUMPY, arrays_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.query import MaxBRSTkNNQuery, MaxBRSTkNNResult
    from ..model.dataset import Dataset

__all__ = ["PersistentWorkerPool", "execute_shard_payload"]

#: One phase-2 work chunk: several queries sharing one phase-1 state,
#: so the (O(num_users)-sized) SharedTopK pickles once per chunk.
Payload = Tuple[List["MaxBRSTkNNQuery"], SharedTopK, str, str, str]

#: Parent-side registry of pool datasets, keyed by a per-pool token.
#: Forked workers inherit the whole registry through copy-on-write and
#: the initializer resolves their token into ``_WORKER_DATASET`` — only
#: the *token* (an int) ever crosses the worker pipe.  Passing the
#: dataset itself as Pool ``initargs`` would *pickle* it per worker,
#: silently dropping the pre-built DatasetArrays (Dataset.__getstate__
#: excludes them, and DatasetArrays refuses to pickle outright) and
#: making every worker rebuild them: the exact waste this pool exists
#: to avoid.  A registry (rather than one module global) keeps late
#: worker respawns and concurrent pools correct — whenever a child
#: forks, its registry snapshot holds every live pool's dataset.  The
#: regression test ``tests/serve/test_pool.py`` asserts workers
#: inherit, not rebuild.
_WORKER_DATASET = None
_FORK_DATASETS: Dict[int, "Dataset"] = {}
_FORK_TOKENS = itertools.count()


def _init_worker(token: int) -> None:
    global _WORKER_DATASET
    _WORKER_DATASET = _FORK_DATASETS[token]


def _run_payload(payload: Payload) -> List["MaxBRSTkNNResult"]:
    queries, shared, mode, method, backend = payload
    return [
        _select_one(_WORKER_DATASET, query, shared, mode, method, backend)
        for query in queries
    ]


#: One shard-scatter work item (see ``repro.serve.sharded``): either a
#: refine round — exact RSk(u) for the shard's users at each requested
#: k against the shared traversal pool — or a shortlist round covering
#: a whole micro-batch of queries.  The shard's dataset itself never
#: travels: workers hold it from the fork (COW), in-process execution
#: passes it explicitly.
ShardPayload = Tuple  # ("refine", traversal, ks, backend, shard_id) | ("shortlist", ...)


def execute_shard_payload(dataset: "Dataset", payload: ShardPayload):
    """Run one shard task against ``dataset`` (shard subset).

    Shared by the fork-pool workers (``dataset`` = the inherited shard
    dataset) and the in-process scatter fallback, so both execution
    modes are the same code path and produce identical partials.
    """
    from ..core.partial import compute_partial, compute_shortlist_partial

    kind = payload[0]
    if kind == "refine":
        _, traversal, ks, backend, shard_id = payload
        return [
            compute_partial(dataset, traversal, k, backend=backend, shard_id=shard_id)
            for k in ks
        ]
    if kind == "shortlist":
        _, su, queries, rsk_by_k, group_by_k, backend, shard_id = payload
        return [
            compute_shortlist_partial(
                dataset, q, rsk_by_k[q.k], group_by_k[q.k], su,
                backend=backend, shard_id=shard_id,
            )
            for q in queries
        ]
    if kind == "search":
        # Gather-side fan-out: the central best-first searches of a
        # flush are independent per query, so the sharded engine chunks
        # them over its *root* pool (dataset = the FULL dataset here).
        # Each item carries the id-level merged shortlists; the chunk
        # shares one rsk map (items are grouped per k).  Execution is
        # the same run_merged_search the in-process loop calls.
        from ..core.partial import run_merged_search

        _, items, rsk, rsk_group, method, backend = payload
        out = []
        for query, kept, ids_per_location, pruned, stats, base_selection_s in items:
            result, _elapsed = run_merged_search(
                dataset, query, kept, ids_per_location, pruned, stats,
                base_selection_s, rsk, rsk_group, method, backend,
            )
            out.append(result)
        return out
    raise ValueError(f"unknown shard payload kind {kind!r}")


def _run_shard_payload(payload: ShardPayload):
    return execute_shard_payload(_WORKER_DATASET, payload)


class PersistentWorkerPool:
    """Long-lived fork pool bound to one dataset.

    Parameters
    ----------
    dataset:
        The dataset every payload is answered against.  Must not be
        mutated after the pool is built (workers hold the pre-fork
        snapshot).
    workers:
        Number of worker processes (>= 1).
    """

    def __init__(self, dataset: "Dataset", workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "PersistentWorkerPool requires the 'fork' start method"
            )
        if HAS_NUMPY:
            arrays_for(dataset)  # build before forking: shared via COW
        self.dataset = dataset
        self.workers = workers
        ctx = multiprocessing.get_context("fork")
        self._token = next(_FORK_TOKENS)
        _FORK_DATASETS[self._token] = dataset
        # Workers fork inside Pool() and snapshot the registry (and the
        # arrays hanging off the dataset) via copy-on-write; initargs
        # carries only the token.
        self._pool = ctx.Pool(
            workers, initializer=_init_worker, initargs=(self._token,)
        )
        self._closed = False
        # Safety net for pools dropped without close(): the finalizer
        # evicts the registry entry so a leaked pool cannot pin the
        # dataset (and its dense arrays) for the process lifetime.
        self._registry_finalizer = weakref.finalize(
            self, _FORK_DATASETS.pop, self._token, None
        )

    # ------------------------------------------------------------------
    def run_selection(
        self, payloads: Sequence[Payload]
    ) -> List[List["MaxBRSTkNNResult"]]:
        """Run phase 2 for every chunk, preserving chunk and query order."""
        if self._closed:
            raise RuntimeError("pool is closed")
        return self._pool.map(_run_payload, list(payloads))

    def run_shard_tasks_async(self, payloads: Sequence[ShardPayload]):
        """Dispatch shard scatter tasks without blocking.

        Returns the ``multiprocessing`` async result; the sharded
        engine dispatches to *every* shard's pool first and only then
        collects, so shards run concurrently even with one worker each.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        return self._pool.map_async(_run_shard_payload, list(payloads))

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if not self._closed:
            self._closed = True
            self._pool.close()
            self._pool.join()
            self._registry_finalizer()

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
