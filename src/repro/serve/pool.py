"""Persistent fork pool for phase-2 candidate selection.

``query_batch(workers=N)`` forks a fresh pool on every call — workers
inherit the indexes through copy-on-write for free, but the fork +
teardown cost is paid per batch, which PR 1 left on the table.  A
serving layer answers many batches over one immutable dataset, so this
module forks **once at startup**: workers inherit the dataset and the
pre-built :class:`~repro.core.kernels.DatasetArrays` (built *before*
the fork so the arrays live in shared copy-on-write pages), and each
batch ships only small per-chunk payloads through the pool's queues —
queries plus the shared phase-1 thresholds, which the batch executor
groups so each :class:`SharedTopK` is pickled once per worker chunk,
not once per query.

Requires the ``fork`` start method (Linux/macOS).  Construction raises
:class:`RuntimeError` where unavailable — callers fall back to
in-process execution (``ServerConfig.pool_workers=0``).
"""

from __future__ import annotations

import multiprocessing
from typing import TYPE_CHECKING, List, Sequence, Tuple

from ..core.batch import SharedTopK, _select_one
from ..core.kernels import HAS_NUMPY, arrays_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.query import MaxBRSTkNNQuery, MaxBRSTkNNResult
    from ..model.dataset import Dataset

__all__ = ["PersistentWorkerPool"]

#: One phase-2 work chunk: several queries sharing one phase-1 state,
#: so the (O(num_users)-sized) SharedTopK pickles once per chunk.
Payload = Tuple[List["MaxBRSTkNNQuery"], SharedTopK, str, str, str]

#: Set by the initializer in each worker process (inherited via fork,
#: so the dataset and its cached DatasetArrays are never pickled).
_WORKER_DATASET = None


def _init_worker(dataset: "Dataset") -> None:
    global _WORKER_DATASET
    _WORKER_DATASET = dataset


def _run_payload(payload: Payload) -> List["MaxBRSTkNNResult"]:
    queries, shared, mode, method, backend = payload
    return [
        _select_one(_WORKER_DATASET, query, shared, mode, method, backend)
        for query in queries
    ]


class PersistentWorkerPool:
    """Long-lived fork pool bound to one dataset.

    Parameters
    ----------
    dataset:
        The dataset every payload is answered against.  Must not be
        mutated after the pool is built (workers hold the pre-fork
        snapshot).
    workers:
        Number of worker processes (>= 1).
    """

    def __init__(self, dataset: "Dataset", workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "PersistentWorkerPool requires the 'fork' start method"
            )
        if HAS_NUMPY:
            arrays_for(dataset)  # build before forking: shared via COW
        self.dataset = dataset
        self.workers = workers
        ctx = multiprocessing.get_context("fork")
        self._pool = ctx.Pool(
            workers, initializer=_init_worker, initargs=(dataset,)
        )
        self._closed = False

    # ------------------------------------------------------------------
    def run_selection(
        self, payloads: Sequence[Payload]
    ) -> List[List["MaxBRSTkNNResult"]]:
        """Run phase 2 for every chunk, preserving chunk and query order."""
        if self._closed:
            raise RuntimeError("pool is closed")
        return self._pool.map(_run_payload, list(payloads))

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if not self._closed:
            self._closed = True
            self._pool.close()
            self._pool.join()

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
