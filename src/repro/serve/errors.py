"""Typed errors of the serving layer's failure domains.

Three families, by who observes them:

* **Admission** (:class:`ServerStopped`, :class:`ServerOverloaded`) —
  raised to ``submit()`` callers.  Both subclass :class:`ServingError`
  (itself a ``RuntimeError``, so pre-existing ``except RuntimeError``
  call sites keep working) and are terminal for that request only.
* **Pool transport** (:class:`PoolFailure` and its subclasses
  :class:`WorkerCrashed`, :class:`FlushDeadlineExceeded`,
  :class:`PoolUnavailable`) — raised by the supervised pool when a
  scatter round fails for reasons *outside* the task code: a worker
  process died, the round missed its deadline, the pool is closed or
  terminally broken.  They subclass
  :class:`~repro.core.pipeline.ScatterFailure`, which the pipeline
  executors catch to degrade the round to in-process execution —
  results stay bitwise-identical because the worker entry point is
  pure.
* **Task errors** (:class:`ScatterTaskError`) — an exception raised by
  the payload itself inside a worker.  Also a ``ScatterFailure`` (so a
  *transient* task error is retried and, past the budget, the flush
  degrades to in-process — where a genuine bug reproduces and
  propagates authentically, with the original exception chained as
  ``__cause__``).
"""

from __future__ import annotations

from ..core.pipeline import ScatterFailure

__all__ = [
    "ServingError",
    "ServerStopped",
    "ServerOverloaded",
    "PoolFailure",
    "WorkerCrashed",
    "FlushDeadlineExceeded",
    "PoolUnavailable",
    "ScatterTaskError",
]


class ServingError(RuntimeError):
    """Base of the errors ``submit()`` can raise to a caller."""


class ServerStopped(ServingError):
    """The server stopped before (or while) this query could execute.

    Raised by ``submit()`` once ``stop()`` has begun, and set on every
    still-pending future the drain could not answer — no future is ever
    left to hang.
    """


class ServerOverloaded(ServingError):
    """Admission queue full (``ServerConfig.max_pending``): load shed.

    The query was rejected *before* entering the queue; nothing was
    executed and the caller should back off and retry.
    """


class PoolFailure(ScatterFailure):
    """A worker-pool scatter round failed for transport reasons."""


class WorkerCrashed(PoolFailure):
    """A worker process died mid-round (its task is lost forever —
    without supervision the round's result would simply never arrive)."""


class FlushDeadlineExceeded(PoolFailure):
    """A scatter round outlived ``DeadlinePolicy.flush_deadline_s``."""


class PoolUnavailable(PoolFailure):
    """The pool is closed, or broken past repair (respawn failed).

    Terminal for the pool: the supervisor will not retry on it, and
    executors fall back to in-process execution until the pool is
    rebuilt.
    """


class ScatterTaskError(ScatterFailure):
    """A scatter task raised inside a worker (original as __cause__)."""
