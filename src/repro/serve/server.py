"""Asyncio micro-batching front-end over the batch query engine.

Serving MaxBRSTkNN traffic one query at a time re-pays the expensive
query-independent top-k phase per request — exactly the redundancy
``query_batch`` removes, but a network front-end receives queries one
at a time, not in batches.  :class:`MaxBRSTkNNServer` bridges the gap
with **micro-batching**: ``await server.submit(query)`` parks the
caller on a future, a single flusher task collects everything pending
(flushing when ``max_batch`` queries are waiting or ``max_wait_ms``
has elapsed since the batch opened, whichever comes first), executes
the micro-batch through ``engine.query_batch`` in a worker thread, and
resolves the futures.  Concurrent callers therefore share the top-k
phase — and the persistent fork pool, if configured — without knowing
about each other.

Results are identical to sequential ``engine.query`` calls (that is
``query_batch``'s contract); only latency and throughput change.
"""

from __future__ import annotations

import asyncio
import warnings
from collections import deque
from functools import partial
from typing import Deque, List, Optional, Sequence, Tuple

from ..core.cache import ResultCache
from ..core.config import Mode
from ..core.engine import MaxBRSTkNNEngine
from ..core.pipeline import ScatterFailure
from ..core.query import MaxBRSTkNNQuery, MaxBRSTkNNResult
from .config import AdaptiveWaitController, ServerConfig, ServerStats
from .errors import ServerOverloaded, ServerStopped
from .pool import PersistentWorkerPool

__all__ = ["MaxBRSTkNNServer"]

_PendingItem = Tuple[MaxBRSTkNNQuery, "asyncio.Future[MaxBRSTkNNResult]"]


class MaxBRSTkNNServer:
    """Async micro-batching server over one engine.

    Use as an async context manager (or ``await start()`` / ``await
    stop()`` explicitly)::

        async with MaxBRSTkNNServer(engine, ServerConfig(max_wait_ms=2)) as srv:
            results = await asyncio.gather(*(srv.submit(q) for q in queries))

    One server owns one engine and one :class:`ServerConfig`; every
    submitted query runs with ``config.options``.  All ``submit`` calls
    must come from the event loop the server was started on.

    The engine may be a plain :class:`MaxBRSTkNNEngine` or a
    :class:`~repro.serve.sharded.ShardedEngine` — the submit/flush path
    is identical; only worker-pool ownership differs (a sharded engine
    declares ``manages_own_pools`` and the server starts *its* per-shard
    pools instead of wrapping it in a selection pool).
    """

    def __init__(
        self, engine: MaxBRSTkNNEngine, config: Optional[ServerConfig] = None
    ) -> None:
        self.engine = engine
        self.config = config if config is not None else ServerConfig()
        self.stats = ServerStats()
        self._pending: Deque[_PendingItem] = deque()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wakeup: Optional[asyncio.Event] = None
        self._flusher: Optional["asyncio.Task[None]"] = None
        self._pool: Optional[PersistentWorkerPool] = None
        self._wait: Optional[AdaptiveWaitController] = (
            self.config.make_wait_controller() if self.config.adaptive else None
        )
        #: Cross-flush result cache (``config.cache``): exact repeats
        #: skip the pipeline and resolve straight from the LRU, keyed
        #: on (canonical query signature, options, dataset epoch).
        self._cache: Optional[ResultCache] = (
            ResultCache(self.config.cache) if self.config.cache is not None else None
        )
        self._engine_pools_started = False
        self._stopping = False
        self._started = False
        #: Set when pool startup failed and serving continues degraded
        #: (in-process execution; results identical, latency worse).
        self._pools_unavailable = False
        #: Whole-flush re-executions by _execute's last-resort rescue
        #: path (folded into stats.flush_retries alongside pool-level
        #: round retries).
        self._rescue_retries = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "MaxBRSTkNNServer":
        """Start the flusher task (and the persistent pool, if sized).

        When the numpy backend will serve, both kernel caches are built
        eagerly here — the :class:`~repro.core.kernels.DatasetArrays`
        *and* the :class:`~repro.core.kernels.TreeArrays` of the object
        tree — so the first query pays no build cost and pool workers
        fork *after* the arrays exist, inheriting them through
        copy-on-write instead of rebuilding per process.
        """
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self._stopping = False
        self._loop = asyncio.get_running_loop()
        self._wakeup = asyncio.Event()
        if self.config.options.backend.resolve() == "numpy":
            # Both engine types declare this hook (sharded engines also
            # build per-shard arrays behind it).
            self.engine.prewarm_kernels()
        if self.config.pool_workers > 0:
            cfg = self.config
            try:
                if self.engine.manages_own_pools:
                    # Sharded engines scatter to their own per-shard
                    # pools; pool_workers sizes each of them.  A failed
                    # start reaps its own partial state before raising.
                    self.engine.start_pools(
                        cfg.pool_workers,
                        retry=cfg.retry, deadline=cfg.deadline,
                        faults=cfg.faults,
                    )
                    self._engine_pools_started = True
                else:
                    # Materialize the zero-copy arena (config.use_shm)
                    # before forking so workers inherit the shm-backed
                    # views and can re-attach it by name after respawn.
                    arena = self.engine.ensure_arena()
                    self._pool = PersistentWorkerPool(
                        self.engine.dataset, cfg.pool_workers,
                        retry=cfg.retry, deadline=cfg.deadline,
                        faults=cfg.faults,
                        arena_name=arena.name if arena is not None else None,
                    )
            except Exception as exc:  # noqa: BLE001 - degrade, keep serving
                # Graceful degradation: no pools means in-process
                # sequential execution — identical results, only
                # latency degrades.  Refusing to serve would turn a
                # capacity problem into an outage.
                self._pool = None
                self._pools_unavailable = True
                warnings.warn(
                    f"worker pools unavailable ({exc!r}); serving "
                    f"degrades to in-process execution",
                    RuntimeWarning,
                    stacklevel=2,
                )
        self._flusher = asyncio.create_task(self._flush_loop())
        return self

    async def stop(self) -> None:
        """Graceful shutdown: drain pending queries, then stop workers.

        Every future still pending once the drain is over — including
        futures stranded by a crashed flusher — fails with a typed
        :class:`~repro.serve.errors.ServerStopped`; no caller is ever
        left awaiting a future nobody will resolve.
        """
        if not self._started:
            return
        self._stopping = True
        assert self._wakeup is not None
        self._wakeup.set()
        flusher_error: Optional[BaseException] = None
        if self._flusher is not None:
            try:
                await self._flusher
            except BaseException as exc:  # noqa: BLE001 - still must fail futures
                flusher_error = exc
            self._flusher = None
        # The drain answers everything under normal operation; a
        # crashed flusher (or a submit racing the drain) can leave
        # futures behind — fail them typed instead of hanging callers.
        detail = (
            f" (flusher crashed: {flusher_error!r})" if flusher_error else ""
        )
        while self._pending:
            _, future = self._pending.popleft()
            if not future.done():
                self.stats.queries_failed += 1
                future.set_exception(ServerStopped(
                    f"server stopped before this query was flushed{detail}"
                ))
        self._sync_fault_counters()
        # Bounded shutdown: a pool worker killed or hung mid-task must
        # not stall stop() forever (config.shutdown_timeout_s; None
        # waits unbounded).
        timeout_s = self.config.shutdown_timeout_s
        if self._pool is not None:
            # Blocking the loop is intended here: the flusher has
            # drained, no queries are in flight, and the close is
            # bounded by shutdown_timeout_s.
            self._pool.close(timeout_s=timeout_s)  # repro: noqa[AB402]
            self._pool = None
        if self._engine_pools_started:
            # Same bounded-drain argument as above.
            self.engine.close_pools(timeout_s=timeout_s)  # repro: noqa[AB402]
            self._engine_pools_started = False
        # Unlink the arena after the workers are gone (sharded engines
        # already did this inside close_pools; close_arena is
        # idempotent) — a stopped server leaves /dev/shm clean.
        close_arena = getattr(self.engine, "close_arena", None)
        if callable(close_arena):
            close_arena()
        self._started = False
        if flusher_error is not None:
            raise flusher_error

    async def __aenter__(self) -> "MaxBRSTkNNServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(self, query: MaxBRSTkNNQuery) -> MaxBRSTkNNResult:
        """Answer one query; batches transparently with concurrent calls."""
        if not self._started:
            raise RuntimeError("server not started (use 'async with' or start())")
        if self._stopping:
            raise ServerStopped("server is stopping; no new queries accepted")
        if (
            self.config.max_pending is not None
            and len(self._pending) >= self.config.max_pending
        ):
            # Bounded admission: shedding now (typed, countable) beats
            # queueing unboundedly and timing out everyone later.
            self.stats.queries_shed += 1
            raise ServerOverloaded(
                f"admission queue full ({len(self._pending)} pending >= "
                f"max_pending={self.config.max_pending}); retry later"
            )
        assert self._loop is not None and self._wakeup is not None
        future: "asyncio.Future[MaxBRSTkNNResult]" = self._loop.create_future()
        if self._wait is not None:
            self._wait.observe(self._loop.time())
        self._pending.append((query, future))
        self.stats.queries_submitted += 1
        self._wakeup.set()
        return await future

    async def submit_many(
        self, queries: Sequence[MaxBRSTkNNQuery]
    ) -> List[MaxBRSTkNNResult]:
        """Submit concurrently; results come back in submission order."""
        return list(await asyncio.gather(*(self.submit(q) for q in queries)))

    def stats_snapshot(self) -> dict:
        """Server counters plus per-shard and adaptive-window detail.

        Extends :meth:`ServerStats.snapshot` with the sharded engine's
        per-shard queue depth / flush counters (when the engine exposes
        ``shard_stats``) and the adaptive controller's current state
        (when ``max_wait_ms="auto"``).
        """
        snap = self.stats.snapshot()
        shard_stats = getattr(self.engine, "shard_stats", None)
        if shard_stats is not None:
            snap["shards"] = shard_stats()
        skew = getattr(self.engine, "partition_skew", None)
        if skew is not None:
            # Build-time imbalance guard (largest shard / ideal share);
            # > num_shards/2 means one shard dominates the scatter.
            snap["partition_skew"] = round(skew, 3)
        if self._wait is not None:
            snap["adaptive_wait_ms"] = round(self._wait.window_ms(), 3)
            if self._wait.ewma_ms is not None:
                snap["adaptive_ewma_ms"] = round(self._wait.ewma_ms, 3)
        if self._cache is not None:
            snap["cache_entries"] = len(self._cache)
        codec = getattr(self.engine, "payload_codec", None)
        if codec is not None:
            snap["shm_codec"] = codec.stats_snapshot()
        self._sync_fault_counters()
        pool_health = getattr(self.engine, "pool_health", None)
        if callable(pool_health):
            snap["pool_health"] = pool_health()
        elif self._pool is not None:
            snap["pool_health"] = [
                {"pool": "selection", **self._pool.health.snapshot()}
            ]
        return snap

    def _sync_fault_counters(self) -> None:
        """Mirror pool-level fault totals onto ``ServerStats``.

        Pools own the ground truth (their counters survive respawns and
        banking on close); the server copies the totals so one
        ``stats.snapshot()`` tells the whole recovery story.
        """
        respawns = deaths = deadlines = retries = 0
        engine_counters = getattr(self.engine, "fault_counters", None)
        if callable(engine_counters):
            totals = engine_counters()
            respawns += totals.get("respawns", 0)
            deaths += totals.get("worker_deaths", 0)
            deadlines += totals.get("deadline_hits", 0)
            retries += totals.get("retries", 0)
        if self._pool is not None:
            health = self._pool.health
            respawns += health.respawns
            deaths += health.worker_deaths
            deadlines += health.deadline_hits
            retries += health.retries
        self.stats.pool_respawns = max(self.stats.pool_respawns, respawns)
        self.stats.worker_deaths = max(self.stats.worker_deaths, deaths)
        self.stats.deadline_hits = max(self.stats.deadline_hits, deadlines)
        self.stats.flush_retries = max(
            self.stats.flush_retries, retries + self._rescue_retries
        )

    def _account_flush_faults(self, error: Optional[Exception]) -> None:
        """Fold this flush's recovery work into the server counters."""
        self._sync_fault_counters()
        if self._pools_unavailable:
            # Pools never came up: every executed flush is a degraded
            # flush by definition.
            self.stats.degraded_flushes += 1
            return
        if error is not None:
            return  # the flush failed outright; no report to read
        report = getattr(self.engine, "last_flush_report", None)
        if report is None:
            return
        self.stats.bytes_shipped += (
            report.payload_bytes_out + report.payload_bytes_in
        )
        if report.degraded_partitions > 0:
            self.stats.degraded_flushes += 1

    # ------------------------------------------------------------------
    # Flusher
    # ------------------------------------------------------------------
    async def _flush_loop(self) -> None:
        assert self._loop is not None and self._wakeup is not None
        cfg = self.config
        while True:
            if not self._pending:
                if self._stopping:
                    return
                self._wakeup.clear()
                if self._pending or self._stopping:
                    continue  # raced with a submit between check and clear
                await self._wakeup.wait()
                continue
            # A batch is open: hold it for up to the flush window while
            # more queries trickle in, unless it fills or we are
            # draining.  The window is the configured max_wait_ms, or —
            # in "auto" mode — whatever the adaptive controller derives
            # from the observed arrival rate for *this* batch.
            timed_out = False
            wait_ms = self._wait.window_ms() if self._wait is not None \
                else cfg.max_wait_ms
            self.stats.last_wait_ms = wait_ms
            if wait_ms > 0:
                deadline = self._loop.time() + wait_ms / 1000.0
                while len(self._pending) < cfg.max_batch and not self._stopping:
                    remaining = deadline - self._loop.time()
                    if remaining <= 0:
                        timed_out = True
                        break
                    self._wakeup.clear()
                    try:
                        await asyncio.wait_for(self._wakeup.wait(), remaining)
                    except asyncio.TimeoutError:
                        timed_out = True
                        break
            self.stats.queue_depth_peak = max(
                self.stats.queue_depth_peak, len(self._pending)
            )
            size = min(cfg.max_batch, len(self._pending))
            batch = [self._pending.popleft() for _ in range(size)]
            if size >= cfg.max_batch:
                self.stats.full_flushes += 1
            elif self._stopping:
                self.stats.drain_flushes += 1
            elif timed_out:
                self.stats.timeout_flushes += 1
            else:  # zero window (fixed or adaptive): flush the pending burst
                self.stats.timeout_flushes += 1
            try:
                await self._execute(batch)
            except Exception as exc:  # noqa: BLE001 - fail the batch, not the loop
                # The flusher is the single consumer of the queue: if it
                # died, every later submit would hang forever.  Fail
                # this batch's futures and keep the loop alive.
                for _, future in batch:
                    if not future.done():
                        self.stats.queries_failed += 1
                        future.set_exception(exc)
            except BaseException as exc:
                # The flusher itself is dying (cancellation, interpreter
                # shutdown).  This batch already left the queue, so
                # stop()'s drain would never see its futures — fail them
                # typed here before propagating, or their callers hang.
                for _, future in batch:
                    if not future.done():
                        self.stats.queries_failed += 1
                        future.set_exception(ServerStopped(
                            f"server flusher crashed mid-flush ({exc!r})"
                        ))
                raise

    def _count_threshold_warm(self, queries: Sequence[MaxBRSTkNNQuery]) -> int:
        """Cache misses landing on an already-walked ``k`` (warm tier).

        These queries still execute, but the engine's memoized
        ``SharedTraversalPool`` / ``RootTraversal`` serves their phase-1
        thresholds without a tree walk — the cache's warmer tier, worth
        counting separately from exact-result hits.
        """
        caps = self.engine.capabilities()
        mode = self.config.options.mode
        if mode is Mode.INDEXED:
            pool_k = caps.root_pool_k
        elif mode is Mode.JOINT:
            pool_k = caps.traversal_pool_k
        else:  # baseline has no cross-k pool
            pool_k = None
        if pool_k is None:
            return 0
        return sum(1 for q in queries if q.k <= pool_k)

    async def _execute(self, batch: List[_PendingItem]) -> None:
        """Run one micro-batch in a worker thread and resolve futures."""
        assert self._loop is not None
        # Entries whose callers cancelled (client timeout) are dropped
        # here, unexecuted: their futures can take no result, and
        # counting them as completed/failed would drift in_flight
        # negative and never recover.
        live = [entry for entry in batch if not entry[1].done()]
        self.stats.queries_cancelled += len(batch) - len(live)
        if not live:
            return
        queries = [query for query, _ in live]
        self.stats.batches_executed += 1
        self.stats.batch_queries_sum += len(live)
        self.stats.largest_batch = max(self.stats.largest_batch, len(live))
        options = self.config.options
        epoch = getattr(self.engine.dataset, "epoch", 0)
        results: List[Optional[MaxBRSTkNNResult]] = [None] * len(live)
        misses = list(range(len(live)))
        if self._cache is not None:
            misses = []
            for i, query in enumerate(queries):
                hit = self._cache.lookup(query, options, epoch)
                if hit is not None:
                    results[i] = hit
                    self.stats.cache_hits += 1
                else:
                    misses.append(i)
                    self.stats.cache_misses += 1
            if misses and self._cache.policy.track_thresholds:
                self.stats.cache_threshold_hits += self._count_threshold_warm(
                    [queries[i] for i in misses]
                )
        error: Optional[Exception] = None
        if misses:
            run = partial(
                self.engine.query_batch,
                [queries[i] for i in misses],
                options,
                pool=self._pool,
            )
            try:
                try:
                    miss_results = await self._loop.run_in_executor(None, run)
                except ScatterFailure:
                    # The executors degrade pool failures in-process
                    # themselves; one escaping here means the flush
                    # died between layers — re-execute the whole flush
                    # once before failing it (identical inputs, so a
                    # success is the identical answer).
                    self._rescue_retries += 1
                    miss_results = await self._loop.run_in_executor(None, run)
            except Exception as exc:  # noqa: BLE001 - fail the batch, keep serving
                error = exc
            else:
                for i, result in zip(misses, miss_results):
                    results[i] = result
                    if self._cache is not None:
                        self.stats.cache_evictions += self._cache.store(
                            queries[i], options, epoch, result
                        )
            self._account_flush_faults(error)
        for (_, future), result in zip(live, results):
            if future.done():  # cancelled while the batch executed
                self.stats.queries_cancelled += 1
            elif result is not None:
                self.stats.queries_completed += 1
                future.set_result(result)
            else:
                self.stats.queries_failed += 1
                future.set_exception(error)
