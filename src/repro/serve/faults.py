"""Deterministic fault injection for the fault-tolerant serving stack.

Recovery code that only runs when production breaks is recovery code
that has never run.  This module makes every failure domain of the
serving runtime *triggerable on demand*, deterministically, so the
seeded test suites (``tests/serve/test_faults_*``) and the CI
``fault-smoke`` job can drive worker death, task hangs, shard
exceptions and whole-pool loss through the exact code paths production
would take — and assert bitwise result identity on the other side.

A :class:`FaultPlan` is a frozen description of *what* to break and
*when*:

* ``kill_worker_on_task=N`` — the worker running its N-th task (0-based,
  counted per worker process) exits hard via ``os._exit``: no cleanup,
  no exception, exactly what the OOM killer or a segfault looks like to
  the parent.
* ``hang_on_task=N`` — the N-th task sleeps ``hang_s`` seconds instead
  of finishing, exercising the flush-deadline path.
* ``exception_on_shard=K`` — any task carrying shard id ``K`` raises
  :class:`InjectedFault`, exercising the task-exception retry path.
* ``exception_on_task=N`` — the N-th task raises regardless of shard
  (covers the root search pool, whose payloads carry no shard id).
* ``break_dispatch`` / ``break_respawn`` — parent-side hooks: dispatch
  fails as if the pool transport were gone; respawn fails as if forking
  were impossible (driving the pool into its terminal BROKEN state and
  the executors into in-process degradation).

The **socket transport** (:mod:`repro.serve.transport`) adds a
host-side fault family, enforced inside the shard-host frame loop
(:mod:`repro.serve.shardhost`) so the coordinator's recovery runs over
real TCP failures, not simulated ones:

* ``drop_connection_on_frame=N`` — the host closes the connection
  abruptly instead of answering its N-th scatter frame (0-based,
  counted per host process, fires once): the coordinator sees EOF /
  reset, i.e. :class:`~repro.serve.errors.WorkerCrashed`.
* ``stall_read_on_frame=N`` — the host sleeps ``stall_s`` seconds
  before answering its N-th scatter frame (fires once), driving the
  coordinator's read timeout
  (:class:`~repro.serve.errors.FlushDeadlineExceeded`).
* ``refuse_accept`` — the host closes every accepted connection before
  reading a byte: persistent refusal of service, the socket analog of
  ``pool_loss`` (the coordinator degrades to in-process execution).

Determinism comes from **generation gating**: worker-side faults are
armed only while the pool is in one of the listed ``generations``
(default: only generation 0, the pool as first forked).  After the
supervisor respawns the pool, generation 1's workers run fault-free, so
"kill → respawn → retry succeeds" is a deterministic sequence, not a
race.  ``generations=None`` arms the fault forever (for tests of
persistent degradation).  ``pool_id`` scopes a plan to one pool of a
sharded engine (shard pools get their shard id, the root search pool
``SEARCH_POOL_ID``); ``None`` applies to every pool.

The plan rides into workers through the same fork-registry mechanism as
the dataset (:mod:`repro.serve.pool`), so arming a fault costs nothing
on the payload path and a ``FaultPlan(...)``-free pool has zero
overhead beyond one ``is None`` check per task.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["FaultPlan", "InjectedFault", "KILL_EXIT_CODE", "SEARCH_POOL_ID"]

#: Exit status of a worker felled by ``kill_worker_on_task`` — distinct
#: from 0 so the supervisor's exitcode sweep sees an abnormal death.
KILL_EXIT_CODE = 3

#: ``pool_id`` of the sharded engine's root search pool (shard pools
#: use their non-negative shard ids).
SEARCH_POOL_ID = -1


class InjectedFault(RuntimeError):
    """Raised inside a worker (or parent hook) by an armed FaultPlan."""


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """What to break, where, and in which pool generations."""

    kill_worker_on_task: Optional[int] = None
    hang_on_task: Optional[int] = None
    hang_s: float = 30.0
    exception_on_shard: Optional[int] = None
    exception_on_task: Optional[int] = None
    break_dispatch: bool = False
    break_respawn: bool = False
    # -- socket transport faults (enforced host-side, fire once) -------
    drop_connection_on_frame: Optional[int] = None
    stall_read_on_frame: Optional[int] = None
    stall_s: float = 5.0
    refuse_accept: bool = False
    pool_id: Optional[int] = None
    generations: Optional[Tuple[int, ...]] = (0,)

    def __post_init__(self) -> None:
        for name in ("kill_worker_on_task", "hang_on_task",
                     "exception_on_shard", "exception_on_task",
                     "drop_connection_on_frame", "stall_read_on_frame"):
            value = getattr(self, name)
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, int) or value < 0
            ):
                raise ValueError(f"{name} must be a non-negative int or None, "
                                 f"got {value!r}")
        if not (isinstance(self.hang_s, (int, float)) and self.hang_s >= 0):
            raise ValueError(f"hang_s must be >= 0, got {self.hang_s!r}")
        if not (isinstance(self.stall_s, (int, float)) and self.stall_s >= 0):
            raise ValueError(f"stall_s must be >= 0, got {self.stall_s!r}")
        if self.generations is not None:
            object.__setattr__(self, "generations", tuple(self.generations))

    # -- arming --------------------------------------------------------
    def armed(self, generation: int, pool_id: Optional[int]) -> bool:
        """Is this plan live for ``(generation, pool_id)``?"""
        if self.pool_id is not None and pool_id != self.pool_id:
            return False
        if self.generations is not None and generation not in self.generations:
            return False
        return True

    # -- worker-side hook ----------------------------------------------
    def worker_hook(
        self,
        task_index: int,
        generation: int,
        pool_id: Optional[int],
        shard_id: Optional[int],
    ) -> None:
        """Fire (or not) for one task about to run inside a worker.

        Called from the pool's worker entry points with the worker's
        own 0-based task counter; deterministic because each worker
        counts its own tasks and faults are generation-gated.
        """
        if not self.armed(generation, pool_id):
            return
        if self.kill_worker_on_task is not None and \
                task_index == self.kill_worker_on_task:
            # A hard exit, not an exception: the parent must discover
            # the death from the process table, exactly as for a
            # segfault or the OOM killer.
            os._exit(KILL_EXIT_CODE)
        if self.hang_on_task is not None and task_index == self.hang_on_task:
            time.sleep(self.hang_s)
        if self.exception_on_task is not None and \
                task_index == self.exception_on_task:
            raise InjectedFault(
                f"injected exception on task {task_index} "
                f"(pool {pool_id}, generation {generation})"
            )
        if self.exception_on_shard is not None and \
                shard_id == self.exception_on_shard:
            raise InjectedFault(
                f"injected exception on shard {shard_id} "
                f"(pool {pool_id}, generation {generation})"
            )

    # -- convenience constructors (the CLI's --fault vocabulary) -------
    @classmethod
    def kill_worker(cls, task: int = 0, **kwargs) -> "FaultPlan":
        """First generation's worker dies on its ``task``-th task."""
        return cls(kill_worker_on_task=task, **kwargs)

    @classmethod
    def hang_task(cls, task: int = 0, hang_s: float = 30.0, **kwargs) -> "FaultPlan":
        """First generation's ``task``-th task outlives any deadline."""
        return cls(hang_on_task=task, hang_s=hang_s, **kwargs)

    @classmethod
    def shard_exception(cls, shard_id: int = 0, **kwargs) -> "FaultPlan":
        """Tasks for ``shard_id`` raise (first generation only)."""
        return cls(exception_on_shard=shard_id, **kwargs)

    @classmethod
    def pool_loss(cls, **kwargs) -> "FaultPlan":
        """Dispatch and respawn both fail, forever: pools are simply
        gone, and serving must degrade to in-process execution."""
        kwargs.setdefault("generations", None)
        return cls(break_dispatch=True, break_respawn=True, **kwargs)

    # -- socket transport faults (the shard-host --fault vocabulary) ---
    @classmethod
    def drop_connection(cls, frame: int = 0, **kwargs) -> "FaultPlan":
        """The host drops the connection on its ``frame``-th scatter
        frame instead of answering (fires once): coordinator-side EOF,
        i.e. ``WorkerCrashed`` over TCP."""
        return cls(drop_connection_on_frame=frame, **kwargs)

    @classmethod
    def stall_read(cls, frame: int = 0, stall_s: float = 5.0, **kwargs) -> "FaultPlan":
        """The host answers its ``frame``-th scatter frame ``stall_s``
        seconds late (fires once), outliving any read deadline."""
        return cls(stall_read_on_frame=frame, stall_s=stall_s, **kwargs)

    @classmethod
    def refuse(cls, **kwargs) -> "FaultPlan":
        """The host closes every accepted connection before reading:
        persistent refusal (the socket analog of ``pool_loss``)."""
        return cls(refuse_accept=True, **kwargs)
