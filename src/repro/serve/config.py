"""Typed configuration and stats counters for the serving layer."""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional, Union

from ..core.config import CachePolicy, QueryOptions, _require_int
from .faults import FaultPlan

__all__ = [
    "AdaptiveWaitController",
    "DeadlinePolicy",
    "RetryPolicy",
    "ServerConfig",
    "ServerStats",
]


def _require_positive_float(name: str, value, *, allow_zero: bool = False) -> None:
    floor_ok = value >= 0 if allow_zero else value > 0
    if (
        isinstance(value, bool)
        or not isinstance(value, (int, float))
        or not math.isfinite(value)
        or not floor_ok
    ):
        bound = ">= 0" if allow_zero else "> 0"
        raise ValueError(f"{name} must be a finite number {bound}, got {value!r}")


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How many times a failed pool round is re-dispatched, and how fast.

    A round that fails for transport reasons (worker death, deadline) is
    retried up to ``max_retries`` times — after a pool respawn when the
    workers died, directly when only the task failed.  Each respawn
    sleeps a capped exponential backoff,
    ``min(backoff_cap_s, backoff_base_s * 2**consecutive_failures)``,
    so a persistently dying pool cannot fork-bomb the host.
    ``max_retries=0`` disables retry: the first failure degrades the
    round to in-process execution immediately.
    """

    max_retries: int = 1
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 1.0

    def __post_init__(self) -> None:
        _require_int("max_retries", self.max_retries, minimum=0)
        _require_positive_float(
            "backoff_base_s", self.backoff_base_s, allow_zero=True
        )
        _require_positive_float("backoff_cap_s", self.backoff_cap_s)

    def backoff_s(self, consecutive_failures: int) -> float:
        """Sleep before the respawn after the N-th consecutive failure."""
        return min(
            self.backoff_cap_s,
            self.backoff_base_s * (2 ** max(0, consecutive_failures - 1)),
        )


@dataclass(frozen=True, slots=True)
class DeadlinePolicy:
    """Per-scatter-round deadline (the anti-wedge bound).

    Without it, a worker hung mid-task parks ``AsyncResult.get()`` —
    and with it every pending future in the server — forever.  The
    supervised pool polls the round every ``poll_interval_s`` and
    declares :class:`~repro.serve.errors.FlushDeadlineExceeded` once
    ``flush_deadline_s`` has elapsed, which triggers the retry /
    degrade ladder.  ``flush_deadline_s=None`` disables the deadline
    (worker-death detection still applies).
    """

    flush_deadline_s: Optional[float] = 30.0
    poll_interval_s: float = 0.02

    def __post_init__(self) -> None:
        if self.flush_deadline_s is not None:
            _require_positive_float("flush_deadline_s", self.flush_deadline_s)
        _require_positive_float("poll_interval_s", self.poll_interval_s)


class AdaptiveWaitController:
    """EWMA inter-arrival estimator driving ``max_wait_ms="auto"``.

    A fixed micro-batch window is wrong at both ends: under a fast
    arrival stream a tiny window already collects a full batch (any
    extra wait is pure latency), while under a sparse stream *no*
    affordable window collects a second query, so waiting buys nothing.
    The controller keeps an exponentially weighted moving average of
    observed inter-arrival times and sizes the window as

    * ``0`` when no second arrival is expected within the ceiling
      (``ewma >= ceiling_ms``) — flush immediately, batching is hopeless;
    * otherwise the time to fill the batch at the observed rate,
      ``ewma * (max_batch - 1)``, clamped into ``[0, ceiling_ms]``.

    The controller is a pure function of the timestamps fed to
    :meth:`observe` — no clock of its own — so tests drive it with a
    fake clock (``tests/serve/test_adaptive.py``).
    """

    def __init__(
        self, ceiling_ms: float, max_batch: int, smoothing: float = 0.2
    ) -> None:
        if not math.isfinite(ceiling_ms) or ceiling_ms < 0:
            raise ValueError(f"ceiling_ms must be finite and >= 0, got {ceiling_ms!r}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch!r}")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing!r}")
        self.ceiling_ms = float(ceiling_ms)
        self.max_batch = int(max_batch)
        self.smoothing = float(smoothing)
        self._last_arrival_s: float | None = None
        self.ewma_ms: float | None = None

    def observe(self, now_s: float) -> None:
        """Record one arrival at ``now_s`` (seconds, any monotonic clock).

        Inter-arrival gaps are capped at ``ceiling_ms`` before entering
        the EWMA: a gap longer than the latency budget carries no more
        information than "slower than the budget", and letting a long
        idle period inflate the average would pin the window at zero
        for the head of every post-idle burst (it would take ~1/
        smoothing arrivals to recover).
        """
        if self._last_arrival_s is not None:
            delta_ms = max(0.0, (now_s - self._last_arrival_s) * 1000.0)
            delta_ms = min(delta_ms, self.ceiling_ms)
            if self.ewma_ms is None:
                self.ewma_ms = delta_ms
            else:
                self.ewma_ms = (
                    self.smoothing * delta_ms
                    + (1.0 - self.smoothing) * self.ewma_ms
                )
        self._last_arrival_s = now_s

    def window_ms(self) -> float:
        """Current flush window, clamped into ``[0, ceiling_ms]``."""
        if self.ewma_ms is None:
            # No inter-arrival signal yet: wait the full budget so the
            # first burst has a chance to batch.
            return self.ceiling_ms
        if self.ewma_ms >= self.ceiling_ms:
            return 0.0
        return min(self.ceiling_ms, self.ewma_ms * (self.max_batch - 1))


@dataclass(frozen=True, slots=True)
class ServerConfig:
    """How a :class:`~repro.serve.server.MaxBRSTkNNServer` batches.

    Attributes
    ----------
    max_batch:
        Flush as soon as this many queries are pending.
    max_wait_ms:
        Flush at most this long after the first query of a batch
        arrived; ``0`` flushes immediately (micro-batching still picks
        up everything already pending, so concurrent bursts batch).
        The string ``"auto"`` enables adaptive batching: the window is
        tuned per batch from an EWMA of observed inter-arrival times
        (:class:`AdaptiveWaitController`), clamped to
        ``[0, auto_wait_ceiling_ms]``.
    auto_wait_ceiling_ms:
        Upper clamp (latency budget) for the adaptive window; only read
        when ``max_wait_ms="auto"``.
    pool_workers:
        Size of the persistent fork pool answering selection; ``0``
        (default) runs phase 2 in-process — right for CPU-starved
        hosts; the pool pays off once real cores are available.  For a
        :class:`~repro.serve.sharded.ShardedEngine` this is the
        *per-shard* worker count (the engine owns the pools).
    options:
        The :class:`QueryOptions` every submitted query is answered
        with (one server = one contract; run several servers for mixed
        workloads).
    cache:
        Cross-flush result cache (:mod:`repro.core.cache`): ``None`` /
        ``False`` disables (the default), ``True`` enables with the
        default :class:`~repro.core.config.CachePolicy`, or pass a
        policy directly.  Normalized to ``None`` or a ``CachePolicy``.
    shutdown_timeout_s:
        Bound on worker-pool shutdown in :meth:`MaxBRSTkNNServer.stop`:
        a pool whose workers died mid-task gets ``terminate()``d (with
        a warning) instead of hanging ``join()`` forever.  ``None``
        waits unbounded (the pre-PR-6 behavior).
    retry:
        :class:`RetryPolicy` governing how failed pool scatter rounds
        are re-dispatched (respawn + retry before degrading).
    deadline:
        :class:`DeadlinePolicy` bounding every pool scatter round, so a
        hung worker can never wedge a flush.
    max_pending:
        Admission bound: ``submit()`` raises
        :class:`~repro.serve.errors.ServerOverloaded` (and counts the
        shed) once this many queries are queued unflushed.  ``None``
        (default) admits unboundedly.
    faults:
        Optional :class:`~repro.serve.faults.FaultPlan` injected into
        every pool the server starts — test/CI hook; ``None`` in
        production.
    """

    max_batch: int = 32
    max_wait_ms: Union[float, str] = 2.0
    pool_workers: int = 0
    options: QueryOptions = field(default_factory=QueryOptions.default)
    auto_wait_ceiling_ms: float = 10.0
    cache: Union[CachePolicy, bool, None] = None
    shutdown_timeout_s: Optional[float] = 10.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    deadline: DeadlinePolicy = field(default_factory=DeadlinePolicy)
    max_pending: Optional[int] = None
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        _require_int("max_batch", self.max_batch, minimum=1)
        if isinstance(self.max_wait_ms, str):
            if self.max_wait_ms != "auto":
                raise ValueError(
                    f"max_wait_ms must be a finite number >= 0 or 'auto', "
                    f"got {self.max_wait_ms!r}"
                )
        elif (
            isinstance(self.max_wait_ms, bool)  # bools pass isfinite()
            or not math.isfinite(self.max_wait_ms)
            or self.max_wait_ms < 0
        ):
            # inf would make partial batches wait forever; NaN fails
            # every comparison and silently degrades to a zero window.
            raise ValueError(
                f"max_wait_ms must be finite and >= 0, got {self.max_wait_ms!r}"
            )
        if (
            isinstance(self.auto_wait_ceiling_ms, bool)
            or not math.isfinite(self.auto_wait_ceiling_ms)
            or self.auto_wait_ceiling_ms < 0
        ):
            raise ValueError(
                f"auto_wait_ceiling_ms must be finite and >= 0, "
                f"got {self.auto_wait_ceiling_ms!r}"
            )
        _require_int("pool_workers", self.pool_workers, minimum=0)
        if not isinstance(self.options, QueryOptions):
            raise ValueError("options must be a QueryOptions")
        if self.cache is None or self.cache is False:
            object.__setattr__(self, "cache", None)
        elif self.cache is True:
            object.__setattr__(self, "cache", CachePolicy())
        elif not isinstance(self.cache, CachePolicy):
            raise ValueError(
                f"cache must be a CachePolicy, a bool or None, got {self.cache!r}"
            )
        if self.shutdown_timeout_s is not None and (
            isinstance(self.shutdown_timeout_s, bool)
            or not isinstance(self.shutdown_timeout_s, (int, float))
            or not math.isfinite(self.shutdown_timeout_s)
            or self.shutdown_timeout_s <= 0
        ):
            raise ValueError(
                f"shutdown_timeout_s must be a finite number > 0 or None, "
                f"got {self.shutdown_timeout_s!r}"
            )
        if not isinstance(self.retry, RetryPolicy):
            raise ValueError(f"retry must be a RetryPolicy, got {self.retry!r}")
        if not isinstance(self.deadline, DeadlinePolicy):
            raise ValueError(
                f"deadline must be a DeadlinePolicy, got {self.deadline!r}"
            )
        if self.max_pending is not None:
            _require_int("max_pending", self.max_pending, minimum=1)
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ValueError(
                f"faults must be a FaultPlan or None, got {self.faults!r}"
            )

    @property
    def adaptive(self) -> bool:
        return self.max_wait_ms == "auto"

    def make_wait_controller(self) -> AdaptiveWaitController:
        """A fresh controller for this config (``"auto"`` mode only)."""
        if not self.adaptive:
            raise ValueError("max_wait_ms is fixed; no controller needed")
        return AdaptiveWaitController(self.auto_wait_ceiling_ms, self.max_batch)

    def with_(self, **kwargs) -> "ServerConfig":
        """Functional update (frozen dataclass)."""
        return replace(self, **kwargs)


@dataclass(slots=True)
class ServerStats:
    """Mutable per-server counters (reset with a fresh server)."""

    queries_submitted: int = 0
    queries_completed: int = 0
    queries_failed: int = 0
    queries_cancelled: int = 0  # futures cancelled by callers, dropped at flush
    cache_hits: int = 0            # answered from the result cache
    cache_misses: int = 0          # executed (and stored) on a flush
    cache_evictions: int = 0       # LRU entries aged out by stores
    cache_threshold_hits: int = 0  # misses at an already-walked k (warm tier)
    batches_executed: int = 0
    batch_queries_sum: int = 0
    largest_batch: int = 0
    full_flushes: int = 0      # batch reached max_batch
    timeout_flushes: int = 0   # max_wait_ms elapsed first
    drain_flushes: int = 0     # flushed during shutdown drain
    queue_depth_peak: int = 0  # deepest pending queue seen at a flush
    last_wait_ms: float = 0.0  # window used by the most recent batch
    # -- fault tolerance (the recovery ladder, made observable) --------
    pool_respawns: int = 0     # pools rebuilt after worker death
    worker_deaths: int = 0     # dead-worker detections across pools
    deadline_hits: int = 0     # scatter rounds past flush_deadline_s
    flush_retries: int = 0     # scatter rounds re-dispatched
    degraded_flushes: int = 0  # flushes that fell back to in-process
    queries_shed: int = 0      # rejected with ServerOverloaded
    #: Serialized payload bytes that crossed pool pipes (dispatched +
    #: collected), summed over executed flushes — the zero-copy tier's
    #: win is this counter shrinking, not a claim.
    bytes_shipped: int = 0

    @property
    def avg_batch_size(self) -> float:
        if self.batches_executed == 0:
            return 0.0
        return self.batch_queries_sum / self.batches_executed

    @property
    def in_flight(self) -> int:
        return (
            self.queries_submitted
            - self.queries_completed
            - self.queries_failed
            - self.queries_cancelled
        )

    def snapshot(self) -> dict:
        """Plain-dict view (CLI / logging friendly)."""
        return {
            "queries_submitted": self.queries_submitted,
            "queries_completed": self.queries_completed,
            "queries_failed": self.queries_failed,
            "queries_cancelled": self.queries_cancelled,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "cache_threshold_hits": self.cache_threshold_hits,
            "batches_executed": self.batches_executed,
            "avg_batch_size": round(self.avg_batch_size, 2),
            "largest_batch": self.largest_batch,
            "full_flushes": self.full_flushes,
            "timeout_flushes": self.timeout_flushes,
            "drain_flushes": self.drain_flushes,
            "queue_depth_peak": self.queue_depth_peak,
            "last_wait_ms": round(self.last_wait_ms, 3),
            "pool_respawns": self.pool_respawns,
            "worker_deaths": self.worker_deaths,
            "deadline_hits": self.deadline_hits,
            "flush_retries": self.flush_retries,
            "degraded_flushes": self.degraded_flushes,
            "queries_shed": self.queries_shed,
            "bytes_shipped": self.bytes_shipped,
        }
