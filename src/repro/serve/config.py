"""Typed configuration and stats counters for the serving layer."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core.config import QueryOptions

__all__ = ["ServerConfig", "ServerStats"]


@dataclass(frozen=True, slots=True)
class ServerConfig:
    """How a :class:`~repro.serve.server.MaxBRSTkNNServer` batches.

    Attributes
    ----------
    max_batch:
        Flush as soon as this many queries are pending.
    max_wait_ms:
        Flush at most this long after the first query of a batch
        arrived; ``0`` flushes immediately (micro-batching still picks
        up everything already pending, so concurrent bursts batch).
    pool_workers:
        Size of the persistent fork pool answering selection; ``0``
        (default) runs phase 2 in-process — right for CPU-starved
        hosts; the pool pays off once real cores are available.
    options:
        The :class:`QueryOptions` every submitted query is answered
        with (one server = one contract; run several servers for mixed
        workloads).
    """

    max_batch: int = 32
    max_wait_ms: float = 2.0
    pool_workers: int = 0
    options: QueryOptions = field(default_factory=QueryOptions.default)

    def __post_init__(self) -> None:
        if not isinstance(self.max_batch, int) or self.max_batch < 1:
            raise ValueError(f"max_batch must be an int >= 1, got {self.max_batch!r}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms!r}")
        if not isinstance(self.pool_workers, int) or self.pool_workers < 0:
            raise ValueError(
                f"pool_workers must be a non-negative int, got {self.pool_workers!r}"
            )
        if not isinstance(self.options, QueryOptions):
            raise ValueError("options must be a QueryOptions")

    def with_(self, **kwargs) -> "ServerConfig":
        """Functional update (frozen dataclass)."""
        return replace(self, **kwargs)


@dataclass(slots=True)
class ServerStats:
    """Mutable per-server counters (reset with a fresh server)."""

    queries_submitted: int = 0
    queries_completed: int = 0
    queries_failed: int = 0
    batches_executed: int = 0
    batch_queries_sum: int = 0
    largest_batch: int = 0
    full_flushes: int = 0      # batch reached max_batch
    timeout_flushes: int = 0   # max_wait_ms elapsed first
    drain_flushes: int = 0     # flushed during shutdown drain

    @property
    def avg_batch_size(self) -> float:
        if self.batches_executed == 0:
            return 0.0
        return self.batch_queries_sum / self.batches_executed

    @property
    def in_flight(self) -> int:
        return self.queries_submitted - self.queries_completed - self.queries_failed

    def snapshot(self) -> dict:
        """Plain-dict view (CLI / logging friendly)."""
        return {
            "queries_submitted": self.queries_submitted,
            "queries_completed": self.queries_completed,
            "queries_failed": self.queries_failed,
            "batches_executed": self.batches_executed,
            "avg_batch_size": round(self.avg_batch_size, 2),
            "largest_batch": self.largest_batch,
            "full_flushes": self.full_flushes,
            "timeout_flushes": self.timeout_flushes,
            "drain_flushes": self.drain_flushes,
        }
