"""Experiment parameter grid (the paper's Table 5, scaled for Python).

The paper runs on 1M–8M Flickr objects with a Java/disk stack; a pure
Python reproduction cannot index millions of objects in benchmark time
(repro band 3/5), so every scale knob is divided by ~250 while keeping
all *ratios* — users per object, keywords per user, area fraction —
intact.  The sweep structure (which parameter varies, which stay at
defaults) matches Table 5 exactly; EXPERIMENTS.md records the mapping.

Bold defaults in Table 5 → ``DEFAULTS`` here; sweep lists mirror the
table rows (k's paper row is 5/10/20/50/100 but every figure plots
1/5/10/20/50, which is what we reproduce).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from ..core.config import QueryOptions

__all__ = ["ExperimentConfig", "DEFAULTS", "SWEEPS", "PAPER_SWEEPS", "config_for"]


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment cell: dataset, users, and query parameters."""

    dataset: str = "flickr"      # "flickr" | "yelp"
    num_objects: int = 4000      # |O|    (paper: 1M)
    num_users: int = 400         # |U|    (paper: 1K)
    k: int = 10
    alpha: float = 0.5
    ul: int = 3                  # keywords per user (UL)
    uw: int = 20                 # unique user keywords (UW) = |W|
    area: float = 5.0            # user MBR side (Area)
    num_locations: int = 20      # |L|
    ws: int = 2
    measure: str = "LM"          # LM | TF | KO
    seed: int = 0
    fanout: int = 32
    backend: str = "python"      # scoring kernels: python | numpy | auto
    batch_size: int = 1          # queries per query_batch call

    def with_(self, **kwargs) -> "ExperimentConfig":
        """Functional update (frozen dataclass)."""
        return replace(self, **kwargs)

    def query_options(self, workers: int = 1) -> QueryOptions:
        """The typed :class:`QueryOptions` this experiment cell runs with."""
        return QueryOptions(backend=self.backend, workers=workers)

    def label(self) -> str:
        label = (
            f"{self.dataset}-O{self.num_objects}-U{self.num_users}-k{self.k}"
            f"-a{self.alpha}-UL{self.ul}-UW{self.uw}-A{self.area}"
            f"-L{self.num_locations}-ws{self.ws}-{self.measure}-s{self.seed}"
        )
        if self.backend != "python" or self.batch_size != 1:
            label += f"-{self.backend}-b{self.batch_size}"
        return label


#: Table 5 bold column, scaled.
DEFAULTS = ExperimentConfig()

#: Swept values per figure (scaled where the knob is a dataset scale).
SWEEPS: Dict[str, List] = {
    "k": [1, 5, 10, 20, 50],
    "alpha": [0.1, 0.3, 0.5, 0.7, 0.9],
    "ul": [1, 2, 3, 4, 5, 6],
    "uw": [5, 10, 20, 30, 40],
    "area": [1.0, 2.0, 5.0, 10.0, 20.0],
    "num_locations": [1, 20, 50, 100, 300],
    "ws": [1, 2, 3, 4, 5, 6, 7, 8],
    # paper: 100, 500, 1K, 2K, 4K users -> scaled by 4
    "num_users": [25, 125, 250, 500, 1000],
    # paper: 1M, 2M, 4M, 8M objects -> scaled by 500
    "num_objects": [2000, 4000, 8000, 16000],
    # paper Fig 15: 500 .. 16K users -> scaled by 8
    "user_index_users": [125, 250, 500, 1000, 2000],
    # batch query engine (no paper analogue): queries per batch
    "batch_size": [1, 4, 16, 64, 256],
}

#: The unscaled values as the paper lists them (for report headers).
PAPER_SWEEPS: Dict[str, List] = {
    "k": [1, 5, 10, 20, 50],
    "alpha": [0.1, 0.3, 0.5, 0.7, 0.9],
    "ul": [1, 2, 3, 4, 5, 6],
    "uw": [5, 10, 20, 30, 40],
    "area": [1, 2, 5, 10, 20],
    "num_locations": [1, 20, 50, 100, 300],
    "ws": [1, 2, 3, 4, 5, 6, 7, 8],
    "num_users": ["100", "500", "1K", "2K", "4K"],
    "num_objects": ["1M", "2M", "4M", "8M"],
    "user_index_users": ["500", "1K", "2K", "4K", "8K"],
    "batch_size": [1, 4, 16, 64, 256],
}


def config_for(param: str, value, base: ExperimentConfig = DEFAULTS) -> ExperimentConfig:
    """Config with one swept knob changed from the defaults."""
    mapping = {
        "k": "k",
        "alpha": "alpha",
        "ul": "ul",
        "uw": "uw",
        "area": "area",
        "num_locations": "num_locations",
        "ws": "ws",
        "num_users": "num_users",
        "num_objects": "num_objects",
        "user_index_users": "num_users",
        "batch_size": "batch_size",
    }
    if param not in mapping:
        raise ValueError(f"unknown sweep parameter {param!r}")
    return base.with_(**{mapping[param]: value})
