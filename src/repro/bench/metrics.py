"""Small statistics helpers shared by the CLI and the benchmarks."""

from __future__ import annotations

from typing import Sequence

__all__ = ["percentile"]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted, non-empty sequence."""
    if not sorted_values:
        raise ValueError("percentile of an empty sequence")
    idx = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]
