"""Experiment harness: parameter grids, metrics, report generation."""

from .harness import (
    Workbench,
    build_workbench,
    measure_selection,
    measure_topk_baseline,
    measure_topk_joint,
    measure_user_index,
)
from .params import DEFAULTS, SWEEPS, ExperimentConfig, config_for

__all__ = [
    "DEFAULTS",
    "ExperimentConfig",
    "SWEEPS",
    "Workbench",
    "build_workbench",
    "config_for",
    "measure_selection",
    "measure_topk_baseline",
    "measure_topk_joint",
    "measure_user_index",
]
