"""Report generator: regenerate every figure/table series as text.

``python -m repro.bench.report`` runs all experiments of Section 8 at
the scaled parameters and prints one table per paper figure, in the
same series layout the paper plots.  ``--quick`` shrinks the grid for a
fast smoke run; ``--figure fig5`` restricts to one figure.

The output of a full run is what EXPERIMENTS.md records.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Iterable, List, Sequence

from .harness import (
    Workbench,
    approximation_ratio,
    build_workbench,
    clear_cache,
    measure_selection,
    measure_topk_baseline,
    measure_topk_joint,
    measure_user_index,
)
from .params import DEFAULTS, SWEEPS, ExperimentConfig, config_for

__all__ = ["run_figure", "run_all", "main", "FIGURES"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def print_table(title: str, header: Sequence, rows: Dict[str, List], out=sys.stdout):
    """Print one figure's series as an aligned text table."""
    cols = [str(h) for h in header]
    names = list(rows)
    widths = [max(len(n) for n in names + [title])] + [
        max(len(str(c)), *(len(_fmt(rows[n][i])) for n in names)) + 2
        for i, c in enumerate(cols)
    ]
    line = title.ljust(widths[0]) + "".join(
        str(c).rjust(w) for c, w in zip(cols, widths[1:])
    )
    print(line, file=out)
    print("-" * len(line), file=out)
    for name in names:
        print(
            name.ljust(widths[0])
            + "".join(_fmt(v).rjust(w) for v, w in zip(rows[name], widths[1:])),
            file=out,
        )
    print(file=out)


# ----------------------------------------------------------------------
# Generic sweep drivers
# ----------------------------------------------------------------------

def sweep_topk(
    param: str,
    values: Iterable,
    base: ExperimentConfig = DEFAULTS,
    measures: Sequence[str] = ("LM",),
) -> Dict[str, List]:
    """B vs J MRPU and MIOCPU across a sweep (Figures 5a/5b pattern)."""
    rows: Dict[str, List] = {}
    for m in measures:
        for label in ("B", "J"):
            rows[f"{label}({m}) MRPU ms"] = []
            rows[f"{label}({m}) MIOCPU"] = []
    for v in values:
        for m in measures:
            bench = build_workbench(config_for(param, v, base.with_(measure=m)))
            for label, fn in (("B", measure_topk_baseline), ("J", measure_topk_joint)):
                met = fn(bench)
                rows[f"{label}({m}) MRPU ms"].append(met.mrpu_ms)
                rows[f"{label}({m}) MIOCPU"].append(met.miocpu)
    return rows


def sweep_selection(
    param: str,
    values: Iterable,
    base: ExperimentConfig = DEFAULTS,
    measures: Sequence[str] = ("LM",),
    include_baseline: bool = True,
) -> Dict[str, List]:
    """Baseline/Exact/Approx runtimes + ratio (Figures 5c/5d pattern)."""
    rows: Dict[str, List] = {}
    methods = (["baseline"] if include_baseline else []) + ["exact", "approx"]
    for m in measures:
        for meth in methods:
            rows[f"{meth[0].upper()}({m}) ms"] = []
        rows[f"ratio({m})"] = []
    for v in values:
        for m in measures:
            bench = build_workbench(config_for(param, v, base.with_(measure=m)))
            results = {meth: measure_selection(bench, meth) for meth in methods}
            for meth in methods:
                rows[f"{meth[0].upper()}({m}) ms"].append(results[meth].runtime_ms)
            exact_n = results["exact"].cardinality
            approx_n = results["approx"].cardinality
            rows[f"ratio({m})"].append(1.0 if exact_n == 0 else approx_n / exact_n)
    return rows


def sweep_user_index(values: Iterable, base: ExperimentConfig = DEFAULTS) -> Dict[str, List]:
    """Figure 15: total I/O un-indexed vs indexed + users pruned %."""
    rows = {"Un-indexed IO": [], "Indexed IO": [], "Users pruned %": []}
    for v in values:
        bench = build_workbench(config_for("user_index_users", v, base))
        unindexed, indexed, pruned_pct = measure_user_index(bench)
        rows["Un-indexed IO"].append(unindexed)
        rows["Indexed IO"].append(indexed)
        rows["Users pruned %"].append(pruned_pct)
    return rows


def dataset_table(base: ExperimentConfig = DEFAULTS) -> Dict[str, List]:
    """Table 4: dataset properties for both synthetic collections."""
    rows: Dict[str, List] = {}
    for kind in ("flickr", "yelp"):
        bench = build_workbench(base.with_(dataset=kind))
        for name, value in bench.dataset.stats().rows():
            rows.setdefault(name, []).append(value)
    return rows


# ----------------------------------------------------------------------
# Figure registry
# ----------------------------------------------------------------------

def _values(param: str, quick: bool) -> List:
    vals = SWEEPS[param]
    return vals[:: max(1, len(vals) // 3)] if quick else vals


def run_figure(name: str, quick: bool = False, out=sys.stdout) -> None:
    """Run one registered figure/table and print its series tables."""
    spec = FIGURES[name]
    spec(quick, out)


def _fig_table4(quick, out):
    print_table("Table 4 (Flickr, Yelp)", ["Flickr", "Yelp"], dataset_table(), out)


def _fig5(quick, out):
    values = _values("k", quick)
    measures = ("LM",) if quick else ("LM", "TF", "KO")
    print_table("Fig 5a/5b vary k", values, sweep_topk("k", values, measures=measures), out)
    print_table(
        "Fig 5c/5d vary k", values, sweep_selection("k", values, measures=measures), out
    )


def _fig6(quick, out):
    values = _values("alpha", quick)
    print_table("Fig 6a/6b vary alpha", values, sweep_topk("alpha", values), out)
    print_table("Fig 6c/6d vary alpha", values, sweep_selection("alpha", values), out)


def _fig7(quick, out):
    values = _values("ul", quick)
    print_table("Fig 7a/7b vary UL", values, sweep_topk("ul", values), out)
    print_table("Fig 7c/7d vary UL", values, sweep_selection("ul", values), out)


def _fig8(quick, out):
    values = _values("uw", quick)
    print_table("Fig 8a/8b vary UW", values, sweep_topk("uw", values), out)
    print_table("Fig 8c/8d vary UW", values, sweep_selection("uw", values), out)


def _fig9(quick, out):
    values = _values("area", quick)
    print_table("Fig 9a/9b vary Area", values, sweep_topk("area", values), out)


def _fig10(quick, out):
    values = _values("num_locations", quick)
    print_table(
        "Fig 10 vary |L|", values, sweep_selection("num_locations", values), out
    )


def _fig11(quick, out):
    values = _values("ws", quick)
    # The combinatorial methods blow up with ws (that is the figure's
    # point); on a single Python core the full grid is capped: the
    # baseline scan runs to ws = 3 and the exact method to ws = 6,
    # while the greedy approximation covers the paper's full 1..8.
    # EXPERIMENTS.md reports the measured growth factors.
    if quick:
        print_table("Fig 11 vary ws", values, sweep_selection("ws", values), out)
        return
    base_vals = [v for v in values if v <= 3]
    exact_vals = [v for v in values if v <= 6]
    print_table(
        "Fig 11 vary ws (B)", base_vals,
        {k: v for k, v in sweep_selection("ws", base_vals).items() if k.startswith("B")},
        out,
    )
    rows = sweep_selection("ws", exact_vals, include_baseline=False)
    print_table("Fig 11 vary ws (E/A/ratio)", exact_vals, rows, out)
    approx_rows: Dict[str, List] = {"A(LM) ms": [], "A |BRSTkNN|": []}
    for v in values:
        bench = build_workbench(config_for("ws", v))
        res = measure_selection(bench, "approx")
        approx_rows["A(LM) ms"].append(res.runtime_ms)
        approx_rows["A |BRSTkNN|"].append(res.cardinality)
    print_table("Fig 11 vary ws (A full range)", values, approx_rows, out)


def _fig12(quick, out):
    values = _values("num_users", quick)
    rows_topk: Dict[str, List] = {"B total ms": [], "J total ms": [],
                                  "B total IO": [], "J total IO": []}
    for v in values:
        bench = build_workbench(config_for("num_users", v))
        b = measure_topk_baseline(bench)
        j = measure_topk_joint(bench)
        rows_topk["B total ms"].append(b.total_ms)
        rows_topk["J total ms"].append(j.total_ms)
        rows_topk["B total IO"].append(b.total_io)
        rows_topk["J total IO"].append(j.total_io)
    print_table("Fig 12a/12b vary |U|", values, rows_topk, out)
    print_table(
        "Fig 12c/12d vary |U|", values, sweep_selection("num_users", values), out
    )


def _fig13(quick, out):
    values = _values("num_objects", quick)
    print_table("Fig 13a/13b vary |O|", values, sweep_topk("num_objects", values), out)
    print_table(
        "Fig 13c/13d vary |O|",
        values,
        sweep_selection("num_objects", values, include_baseline=False),
        out,
    )


def _fig14(quick, out):
    values = _values("k", quick)
    base = DEFAULTS.with_(dataset="yelp")
    print_table("Fig 14a/14b Yelp vary k", values, sweep_topk("k", values, base), out)
    print_table(
        "Fig 14c/14d Yelp vary k",
        values,
        sweep_selection("k", values, base, include_baseline=False),
        out,
    )


def _fig15(quick, out):
    values = _values("user_index_users", quick)
    # Section 7's own framing: the MIUR-tree pays off when users are
    # sparse and ranking is spatially dominated; the base cell reflects
    # that (Area 40, alpha 0.9, fanout 8) — see EXPERIMENTS.md.
    base = DEFAULTS.with_(
        num_objects=2000, area=40.0, alpha=0.9, num_locations=10, fanout=8
    )
    print_table("Fig 15 user index", values, sweep_user_index(values, base), out)


FIGURES: Dict[str, Callable] = {
    "table4": _fig_table4,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
    "fig14": _fig14,
    "fig15": _fig15,
}


def run_all(quick: bool = False, out=sys.stdout) -> None:
    """Regenerate every figure/table of the paper's Section 8."""
    for name in FIGURES:
        print(f"== {name} ==", file=out)
        run_figure(name, quick=quick, out=out)
        clear_cache()  # large sweeps: keep memory bounded


def main(argv=None) -> int:
    """CLI entry point (``python -m repro.bench.report``)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure", choices=sorted(FIGURES), help="one figure only")
    parser.add_argument("--quick", action="store_true", help="thin the sweeps")
    args = parser.parse_args(argv)
    if args.figure:
        run_figure(args.figure, quick=args.quick)
    else:
        run_all(quick=args.quick)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
