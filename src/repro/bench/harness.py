"""Experiment harness: build workloads, run pipelines, collect metrics.

One :class:`ExperimentConfig` cell maps to one :class:`Workbench` — the
dataset, the engine with both indexes, and the query — and the harness
functions compute exactly the four quantities the paper's figures plot:

* **MRPU** — mean runtime per user of the top-k phase (ms);
* **MIOCPU** — mean simulated I/O cost per user of the top-k phase;
* candidate-selection **runtime** (ms) for Baseline / Exact / Approx;
* **approximation ratio** — |BRSTkNN(approx)| / |BRSTkNN(exact)|.

Workbenches are cached per config so pytest-benchmark rounds and the
report generator never rebuild indexes redundantly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Tuple

from ..core.baseline import baseline_select_candidate
from ..core.candidate_selection import select_candidate
from ..core.config import QueryOptions
from ..core.engine import MaxBRSTkNNEngine
from ..core.indexed_users import indexed_users_maxbrstknn
from ..core.joint_topk import joint_traversal, individual_topk
from ..core.query import MaxBRSTkNNQuery
from ..model.dataset import Dataset
from ..datagen.synthetic import flickr_like, yelp_like
from ..datagen.users import candidate_locations, generate_users
from ..topk.single import topk_all_users_individually
from .params import ExperimentConfig

__all__ = [
    "Workbench",
    "TopKMetrics",
    "SelectionMetrics",
    "build_workbench",
    "measure_topk_baseline",
    "measure_topk_joint",
    "measure_selection",
    "measure_batch_throughput",
    "measure_user_index",
    "clear_cache",
]


@dataclass(slots=True)
class TopKMetrics:
    """Per-user averaged top-k phase metrics (Figures 5a/5b style)."""

    mrpu_ms: float
    miocpu: float
    total_ms: float
    total_io: int


@dataclass(slots=True)
class SelectionMetrics:
    """Candidate-selection metrics (Figures 5c/5d style)."""

    runtime_ms: float
    cardinality: int
    combinations_scored: int


@dataclass
class Workbench:
    """Everything needed to run one experiment cell."""

    config: ExperimentConfig
    dataset: Dataset
    engine: MaxBRSTkNNEngine
    query: MaxBRSTkNNQuery
    #: RSk(u) computed once by the joint pipeline (candidate-selection
    #: benchmarks reuse it so they time *selection* only, as the paper
    #: separates phases).
    rsk: Dict[int, float] = field(default_factory=dict)
    rsk_group: float = 0.0

    @property
    def num_users(self) -> int:
        return len(self.dataset.users)


def _build(config: ExperimentConfig) -> Workbench:
    if config.dataset == "flickr":
        objects, vocab = flickr_like(num_objects=config.num_objects, seed=config.seed)
    elif config.dataset == "yelp":
        objects, vocab = yelp_like(
            num_objects=max(60, config.num_objects // 6), seed=config.seed
        )
    else:
        raise ValueError(f"unknown dataset kind {config.dataset!r}")
    workload = generate_users(
        objects,
        num_users=config.num_users,
        keywords_per_user=config.ul,
        unique_keywords=config.uw,
        area_side=config.area,
        seed=config.seed,
    )
    candidate_locations(workload, num_locations=config.num_locations, seed=config.seed)
    dataset = Dataset(
        objects,
        workload.users,
        relevance=config.measure,
        alpha=config.alpha,
        vocabulary=vocab,
    )
    engine = MaxBRSTkNNEngine(dataset, fanout=config.fanout, index_users=True)
    query = MaxBRSTkNNQuery(
        ox=workload.query_object(),
        locations=list(workload.locations),
        keywords=list(workload.candidate_keywords),
        ws=config.ws,
        k=config.k,
    )
    bench = Workbench(config=config, dataset=dataset, engine=engine, query=query)
    traversal = joint_traversal(
        engine.object_tree, dataset, config.k, backend=config.backend
    )
    per_user = individual_topk(traversal, dataset, config.k, backend=config.backend)
    bench.rsk = {uid: r.kth_score for uid, r in per_user.items()}
    bench.rsk_group = traversal.rsk_group
    return bench


@lru_cache(maxsize=8)
def _cached(config: ExperimentConfig) -> Workbench:
    return _build(config)


def build_workbench(config: ExperimentConfig, cached: bool = True) -> Workbench:
    """Build (or fetch the cached) workbench for a config cell."""
    return _cached(config) if cached else _build(config)


def clear_cache() -> None:
    """Drop cached workbenches (large sweeps keep memory bounded)."""
    _cached.cache_clear()


# ----------------------------------------------------------------------
# Phase 1: top-k of all users (Baseline B vs Joint J)
# ----------------------------------------------------------------------

def measure_topk_baseline(bench: Workbench) -> TopKMetrics:
    """Per-user top-k over the MIR-tree, cold, one query per user."""
    engine = bench.engine
    engine.reset_io()
    t0 = time.perf_counter()
    topk_all_users_individually(
        engine.object_tree, bench.dataset, bench.config.k, store=engine.store
    )
    elapsed = time.perf_counter() - t0
    io = engine.io.total
    n = max(1, bench.num_users)
    return TopKMetrics(
        mrpu_ms=1000.0 * elapsed / n,
        miocpu=io / n,
        total_ms=1000.0 * elapsed,
        total_io=io,
    )


def measure_topk_joint(bench: Workbench) -> TopKMetrics:
    """Joint top-k (Algorithms 1+2) for the same users.

    Runs with ``config.backend`` ("python" by default, matching the
    paper's setting; "numpy" exercises the vectorized frontier
    traversal — results and I/O are backend-identical by contract).
    """
    engine = bench.engine
    backend = bench.config.backend
    engine.reset_io()
    t0 = time.perf_counter()
    traversal = joint_traversal(
        engine.object_tree, bench.dataset, bench.config.k, store=engine.store,
        backend=backend,
    )
    individual_topk(traversal, bench.dataset, bench.config.k, backend=backend)
    elapsed = time.perf_counter() - t0
    io = engine.io.total
    n = max(1, bench.num_users)
    return TopKMetrics(
        mrpu_ms=1000.0 * elapsed / n,
        miocpu=io / n,
        total_ms=1000.0 * elapsed,
        total_io=io,
    )


# ----------------------------------------------------------------------
# Phase 2: candidate selection (Baseline scan / Exact / Approx)
# ----------------------------------------------------------------------

def measure_selection(bench: Workbench, method: str) -> SelectionMetrics:
    """Time one candidate-selection method using precomputed RSk."""
    t0 = time.perf_counter()
    if method == "baseline":
        result = baseline_select_candidate(bench.dataset, bench.query, bench.rsk)
    elif method in ("exact", "approx"):
        result = select_candidate(
            bench.dataset, bench.query, bench.rsk, bench.rsk_group, method=method
        )
    else:
        raise ValueError(f"unknown selection method {method!r}")
    elapsed = time.perf_counter() - t0
    return SelectionMetrics(
        runtime_ms=1000.0 * elapsed,
        cardinality=result.cardinality,
        combinations_scored=result.stats.keyword_combinations_scored,
    )


def approximation_ratio(bench: Workbench) -> float:
    """|BRSTkNN(approx)| / |BRSTkNN(exact)| (1.0 when exact finds none)."""
    exact = measure_selection(bench, "exact")
    approx = measure_selection(bench, "approx")
    if exact.cardinality == 0:
        return 1.0
    return approx.cardinality / exact.cardinality


# ----------------------------------------------------------------------
# Batch engine: queries/sec at config.batch_size with config.backend
# ----------------------------------------------------------------------

def measure_batch_throughput(bench: Workbench, workers: int = 1) -> TopKMetrics:
    """Cold ``query_batch`` of ``config.batch_size`` copies of the
    workbench query (the ``batch_size`` sweep in ``params.SWEEPS``).

    Duplicate queries amortize the shared top-k phase exactly like
    distinct same-k queries do, so this times the batch-engine scaling
    without needing workload regeneration; ``mrpu_ms`` is mean runtime
    per *query* here.  Distinct-query sweeps live in
    ``benchmarks/bench_batch_throughput.py``.
    """
    config = bench.config
    queries = [bench.query] * max(1, config.batch_size)
    engine = bench.engine
    engine.clear_topk_cache()
    engine.reset_io()
    t0 = time.perf_counter()
    engine.query_batch(queries, config.query_options(workers=workers))
    elapsed = time.perf_counter() - t0
    io = engine.io.total
    n = len(queries)
    return TopKMetrics(
        mrpu_ms=1000.0 * elapsed / n,
        miocpu=io / n,
        total_ms=1000.0 * elapsed,
        total_io=io,
    )


# ----------------------------------------------------------------------
# Figure 15: user index vs flat super-user
# ----------------------------------------------------------------------

def _user_file_bytes(dataset: Dataset) -> int:
    """Size of a flat on-disk user file (id + location + keyword ids)."""
    return sum(16 + 4 * len(u.terms) for u in dataset.users)


def measure_user_index(bench: Workbench) -> Tuple[int, int, float]:
    """(un-indexed total I/O, indexed total I/O, users pruned %).

    Un-indexed: the users reside on disk as a flat file that must be
    read in full before the joint pipeline can run; the total I/O is
    that scan plus the MIR-tree traversal.  Indexed: the Section 7
    pipeline, whose combined I/O covers the MIR-tree *and* the MIUR-tree
    but never touches the user pages below pruned subtrees (the paper's
    Figure 15 reports the combined cost the same way).
    """
    engine = bench.engine
    engine.reset_io()
    engine.store.counter.load_bytes(_user_file_bytes(bench.dataset))
    engine.query(bench.query, QueryOptions(method="approx", mode="joint"))
    unindexed_io = engine.io.total

    engine.reset_io()
    assert engine.user_tree is not None
    result = indexed_users_maxbrstknn(
        engine.object_tree,
        engine.user_tree,
        bench.dataset,
        bench.query,
        method="approx",
        store=engine.store,
    )
    indexed_io = engine.io.total
    return unindexed_io, indexed_io, result.stats.users_pruned_pct
