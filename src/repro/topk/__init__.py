"""Top-k spatial-textual query processing (per-user baseline)."""

from .single import TopKResult, topk_all_users_individually, topk_single_user

__all__ = ["TopKResult", "topk_all_users_individually", "topk_single_user"]
