"""Per-user top-k spatial-textual search — the baseline ``B``.

Section 4's baseline computes, for every user individually, the top-k
objects under Eq. 1 using the IR-tree exactly as in Cong et al. (2009):
a best-first traversal ordered by the node *upper bound* score (minimum
distance to the user, maximum term weights of the pseudo-document).
A node is expanded only while its upper bound can still beat the k-th
best object found so far; the search is correct because pseudo-document
maxima upper-bound every document in the subtree.

The joint top-k of Section 5 exists precisely because running this per
user re-reads the same pages over and over; the benchmarks contrast the
two (MRPU / MIOCPU, Figures 5–9 and 12–14).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..index.irtree import IRTree
from ..model.dataset import Dataset
from ..model.objects import User
from ..storage.pager import PageStore

__all__ = ["TopKResult", "topk_single_user", "topk_all_users_individually", "kth_score"]


@dataclass(slots=True)
class TopKResult:
    """Top-k objects of one user, best first, with their STS scores."""

    user_id: int
    ranked: List[Tuple[float, int]]  # (score, object_id), descending score

    @property
    def kth_score(self) -> float:
        """``RSk(u)``: score of the k-th ranked object (0 if fewer)."""
        return self.ranked[-1][0] if self.ranked else 0.0

    def object_ids(self) -> List[int]:
        return [oid for _, oid in self.ranked]


def topk_single_user(
    tree: IRTree,
    dataset: Dataset,
    user: User,
    k: int,
    store: Optional[PageStore] = None,
) -> TopKResult:
    """Best-first top-k search for one user over an IR-tree/MIR-tree.

    Returns the ``min(k, |O|)`` best objects.  Ties are broken by object
    id for determinism.
    """
    if k <= 0:
        return TopKResult(user_id=user.item_id, ranked=[])
    alpha = dataset.alpha
    rel = dataset.relevance
    user_terms = user.keyword_set
    z = rel.user_normalizer(user_terms)

    counter = itertools.count()
    # Max-heap via negated keys: (-upper_bound, tiebreak, payload).
    heap: List[Tuple[float, int, object]] = []
    root = tree.root
    heapq.heappush(heap, (-1.0, next(counter), ("node", root)))

    # Min-heap of the k best (score, -object_id) found so far.
    best: List[Tuple[float, int]] = []

    def threshold() -> float:
        return best[0][0] if len(best) >= k else float("-inf")

    while heap:
        neg_ub, _, payload = heapq.heappop(heap)
        if -neg_ub < threshold():
            break  # nothing left can beat the current top-k
        kind, item = payload  # type: ignore[misc]
        if kind == "object":
            score, obj = item  # type: ignore[misc]
            entry = (score, -obj.item_id)
            if len(best) < k:
                heapq.heappush(best, entry)
            elif entry > best[0]:
                heapq.heapreplace(best, entry)
            continue
        node = item
        children, objects = tree.read_node(node, user_terms, store)
        for ov in objects:
            ss = dataset.spatial_score(ov.obj.location, user.location)
            # Score through the same relevance code path as Dataset.sts
            # so joint and per-user pipelines agree bit-for-bit on ties.
            ts = rel.score_with_weights(
                {t: mw for t, (mw, _) in ov.weights.items()}, user_terms
            )
            score = alpha * ss + (1.0 - alpha) * ts
            if len(best) >= k and score < threshold():
                continue
            heapq.heappush(heap, (-score, next(counter), ("object", (score, ov.obj))))
        for cv in children:
            ss_ub = dataset.spatial_score_from_distance(
                dataset.metric.min_distance_point_rect(user.location, cv.node.rect)
            )
            ts_ub = 0.0
            if z > 0.0:
                ts_ub = min(1.0, sum(mw for mw, _ in cv.weights.values()) / z)
            ub = alpha * ss_ub + (1.0 - alpha) * ts_ub
            if len(best) >= k and ub < threshold():
                continue
            heapq.heappush(heap, (-ub, next(counter), ("node", cv.node)))

    ranked = sorted(((s, -negid) for s, negid in best), key=lambda t: (-t[0], t[1]))
    return TopKResult(user_id=user.item_id, ranked=[(s, oid) for s, oid in ranked])


def topk_all_users_individually(
    tree: IRTree,
    dataset: Dataset,
    k: int,
    users: Optional[Sequence[User]] = None,
    store: Optional[PageStore] = None,
) -> Dict[int, TopKResult]:
    """Baseline ``B``: run :func:`topk_single_user` for every user.

    Every query is cold — pages read for one user are charged again for
    the next, which is exactly the redundancy the joint algorithm of
    Section 5 removes.
    """
    users = dataset.users if users is None else users
    return {
        u.item_id: topk_single_user(tree, dataset, u, k, store) for u in users
    }


def kth_score(results: Dict[int, TopKResult], user_id: int) -> float:
    """``RSk(u)`` lookup helper used by candidate selection."""
    return results[user_id].kth_score
