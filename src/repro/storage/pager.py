"""Simulated disk pages and an optional LRU buffer pool.

The indexes in this library are *disk-resident by simulation*: nodes and
inverted lists live in memory (this is Python, and the paper itself
reports simulated rather than physical I/O), but every access is routed
through a :class:`PageStore`, which sizes each structure in bytes,
charges the owning :class:`~repro.storage.iostats.IOCounter`, and can
optionally interpose an LRU buffer pool to model warm caches.

The paper's experiments use *cold* queries — the default here is a
buffer of capacity 0 so every access pays.  The buffer pool is an
extension useful for the ablation benchmark on caching behaviour.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from .iostats import IOCounter, PAGE_SIZE_BYTES

__all__ = [
    "PageStore",
    "LRUBuffer",
    "NODE_HEADER_BYTES",
    "SPATIAL_ENTRY_BYTES",
    "POSTING_ENTRY_BYTES_IR",
    "POSTING_ENTRY_BYTES_MIR",
    "TERM_HEADER_BYTES",
]

#: Size model for on-disk structures.  These mirror a straightforward
#: binary layout: a node header, ~40-byte spatial entries (child pointer
#: + 4 float MBR + document id), and posting entries of
#: ``<doc id, weight>`` (8 bytes) for the IR-tree or
#: ``<doc id, max weight, min weight>`` (12 bytes) for the MIR-tree —
#: the extra 4 bytes per posting are exactly the MIR-tree's space
#: overhead quantified in the paper's cost analysis (Section 5.1).
NODE_HEADER_BYTES = 16
SPATIAL_ENTRY_BYTES = 40
POSTING_ENTRY_BYTES_IR = 8
POSTING_ENTRY_BYTES_MIR = 12
TERM_HEADER_BYTES = 8


class LRUBuffer:
    """A page-granular LRU buffer pool.

    ``capacity`` counts pages; capacity 0 disables caching (cold reads,
    the paper's setting).
    """

    def __init__(self, capacity: int = 0) -> None:
        if capacity < 0:
            raise ValueError("buffer capacity must be non-negative")
        self.capacity = capacity
        self._pages: "OrderedDict[tuple, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, key: tuple) -> bool:
        """Touch a page; return True on a buffer hit."""
        if self.capacity == 0:
            self.misses += 1
            return False
        if key in self._pages:
            self._pages.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._pages[key] = None
        if len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
        return False

    def clear(self) -> None:
        self._pages.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class PageStore:
    """Charges simulated I/O for node and inverted-list accesses.

    One store is shared by all indexes of a query engine so a single
    counter reflects the combined cost (e.g. Figure 15 reports the
    combined I/O of the MIR-tree and the MIUR-tree).
    """

    counter: IOCounter
    buffer: Optional[LRUBuffer] = None
    page_size: int = PAGE_SIZE_BYTES

    def read_node(self, index_name: str, page_id: int) -> None:
        """Charge one I/O for visiting a tree node (unless buffered)."""
        if self.buffer is not None and self.buffer.access((index_name, "node", page_id)):
            return
        self.counter.visit_node()

    def read_inverted_list(
        self, index_name: str, page_id: int, term_id: int, num_bytes: int
    ) -> None:
        """Charge block I/Os for loading one posting list."""
        if num_bytes <= 0:
            return
        if self.buffer is not None and self.buffer.access(
            (index_name, "list", page_id, term_id)
        ):
            return
        self.counter.load_bytes(num_bytes)

    @staticmethod
    def node_bytes(fanout: int) -> int:
        """Approximate serialized size of a tree node."""
        return NODE_HEADER_BYTES + fanout * SPATIAL_ENTRY_BYTES

    @staticmethod
    def posting_list_bytes(num_postings: int, entry_bytes: int) -> int:
        """Approximate serialized size of one posting list."""
        return TERM_HEADER_BYTES + num_postings * entry_bytes
