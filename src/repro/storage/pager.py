"""Simulated disk pages and an optional LRU buffer pool.

The indexes in this library are *disk-resident by simulation*: nodes and
inverted lists live in memory (this is Python, and the paper itself
reports simulated rather than physical I/O), but every access is routed
through a :class:`PageStore`, which sizes each structure in bytes,
charges the owning :class:`~repro.storage.iostats.IOCounter`, and can
optionally interpose an LRU buffer pool to model warm caches.

The paper's experiments use *cold* queries — the default here is a
buffer of capacity 0 so every access pays.  The buffer pool is an
extension useful for the ablation benchmark on caching behaviour.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from .iostats import IOCounter, IOSnapshot, PAGE_SIZE_BYTES

__all__ = [
    "IOCharge",
    "PageStore",
    "LRUBuffer",
    "NODE_HEADER_BYTES",
    "SPATIAL_ENTRY_BYTES",
    "POSTING_ENTRY_BYTES_IR",
    "POSTING_ENTRY_BYTES_MIR",
    "TERM_HEADER_BYTES",
]

#: Size model for on-disk structures.  These mirror a straightforward
#: binary layout: a node header, ~40-byte spatial entries (child pointer
#: + 4 float MBR + document id), and posting entries of
#: ``<doc id, weight>`` (8 bytes) for the IR-tree or
#: ``<doc id, max weight, min weight>`` (12 bytes) for the MIR-tree —
#: the extra 4 bytes per posting are exactly the MIR-tree's space
#: overhead quantified in the paper's cost analysis (Section 5.1).
NODE_HEADER_BYTES = 16
SPATIAL_ENTRY_BYTES = 40
POSTING_ENTRY_BYTES_IR = 8
POSTING_ENTRY_BYTES_MIR = 12
TERM_HEADER_BYTES = 8


class LRUBuffer:
    """A page-granular LRU buffer pool.

    ``capacity`` counts pages; capacity 0 disables caching (cold reads,
    the paper's setting).
    """

    def __init__(self, capacity: int = 0) -> None:
        if capacity < 0:
            raise ValueError("buffer capacity must be non-negative")
        self.capacity = capacity
        self._pages: "OrderedDict[tuple, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, key: tuple) -> bool:
        """Touch a page; return True on a buffer hit."""
        if self.capacity == 0:
            self.misses += 1
            return False
        if key in self._pages:
            self._pages.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._pages[key] = None
        if len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
        return False

    def clear(self) -> None:
        self._pages.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(slots=True)
class IOCharge:
    """A portable simulated-I/O ledger.

    Execution that cannot (or must not) touch an engine's shared
    :class:`~repro.storage.iostats.IOCounter` — a forked worker running
    one query's best-first MIUR search, say — charges its page accesses
    here instead, and the ledger travels back with the result to be
    :meth:`apply`\\ 'd to the real counter.  The charging surface
    mirrors ``IOCounter`` exactly (``visit_node`` / ``load_bytes`` /
    ``load_blocks``, same block rounding), so a :class:`PageStore` can
    use an ``IOCharge`` as its counter and the recorded charges are
    bit-for-bit what the shared counter would have accumulated —
    summing ledgers in any order reproduces the sequential totals.
    """

    node_visits: int = 0
    invfile_blocks: int = 0
    page_size: int = PAGE_SIZE_BYTES

    @property
    def total(self) -> int:
        return self.node_visits + self.invfile_blocks

    # -- IOCounter-compatible charging surface -------------------------
    def visit_node(self) -> None:
        self.node_visits += 1

    def load_bytes(self, num_bytes: int) -> None:
        if num_bytes <= 0:
            return
        self.invfile_blocks += math.ceil(num_bytes / self.page_size)

    def load_blocks(self, blocks: int) -> None:
        if blocks > 0:
            self.invfile_blocks += blocks

    def snapshot(self) -> IOSnapshot:
        return IOSnapshot(self.node_visits, self.invfile_blocks)

    # -- Ledger operations ---------------------------------------------
    def apply(self, counter: IOCounter) -> None:
        """Replay the ledger onto a real counter (gather side)."""
        counter.node_visits += self.node_visits
        counter.invfile_blocks += self.invfile_blocks

    def add(self, other: "IOCharge") -> None:
        self.node_visits += other.node_visits
        self.invfile_blocks += other.invfile_blocks


@dataclass
class PageStore:
    """Charges simulated I/O for node and inverted-list accesses.

    One store is shared by all indexes of a query engine so a single
    counter reflects the combined cost (e.g. Figure 15 reports the
    combined I/O of the MIR-tree and the MIUR-tree).
    """

    counter: IOCounter
    buffer: Optional[LRUBuffer] = None
    page_size: int = PAGE_SIZE_BYTES

    def ledger_view(self) -> Tuple["PageStore", IOCharge]:
        """A read-only execution view of this store plus its ledger.

        The returned store shares nothing mutable with ``self``: it has
        the same size model (``page_size``) but charges a fresh
        :class:`IOCharge` instead of the shared counter, so concurrent
        executions (forked search workers) cannot race on — or, worse,
        silently drop — counter updates.  The caller applies the ledger
        back with :meth:`IOCharge.apply` once the partial result is
        gathered.

        Refuses stores with an LRU buffer attached: buffer hits depend
        on global access order, which per-execution ledgers cannot
        reproduce — callers must keep buffered execution in-process.
        """
        if self.buffer is not None:
            raise ValueError(
                "ledger_view() requires a cold store (no LRU buffer): "
                "buffer hit patterns depend on global access order and "
                "cannot be replayed from per-execution ledgers"
            )
        charge = IOCharge(page_size=self.page_size)
        return PageStore(counter=charge, page_size=self.page_size), charge

    def read_node(self, index_name: str, page_id: int) -> None:
        """Charge one I/O for visiting a tree node (unless buffered)."""
        if self.buffer is not None and self.buffer.access((index_name, "node", page_id)):
            return
        self.counter.visit_node()

    def read_inverted_list(
        self, index_name: str, page_id: int, term_id: int, num_bytes: int
    ) -> None:
        """Charge block I/Os for loading one posting list."""
        if num_bytes <= 0:
            return
        if self.buffer is not None and self.buffer.access(
            (index_name, "list", page_id, term_id)
        ):
            return
        self.counter.load_bytes(num_bytes)

    @staticmethod
    def node_bytes(fanout: int) -> int:
        """Approximate serialized size of a tree node."""
        return NODE_HEADER_BYTES + fanout * SPATIAL_ENTRY_BYTES

    @staticmethod
    def posting_list_bytes(num_postings: int, entry_bytes: int) -> int:
        """Approximate serialized size of one posting list."""
        return TERM_HEADER_BYTES + num_postings * entry_bytes
