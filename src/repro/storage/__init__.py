"""Simulated disk: I/O counters, page sizing, LRU buffer pool.

Binary index persistence lives in :mod:`repro.storage.serde`; import it
as a submodule (``from repro.storage.serde import serialize_irtree``) —
it is not re-exported here because it depends on ``repro.index``, which
itself depends on this package.
"""

from .iostats import IOCounter, IOSnapshot, PAGE_SIZE_BYTES
from .pager import LRUBuffer, PageStore
from .shm import ShmArena, ShmArenaError, arena_segments

__all__ = [
    "IOCounter",
    "IOSnapshot",
    "LRUBuffer",
    "PAGE_SIZE_BYTES",
    "PageStore",
    "ShmArena",
    "ShmArenaError",
    "arena_segments",
]
