"""Zero-copy columnar storage tier over named shared-memory segments.

The serving stack's fork-once COW discipline hands workers the
*initial* arrays for free, but it is fork-only (no spawn-start, no path
to remote hosts) and every per-flush payload still crosses the worker
pipe by pickle.  This module provides the storage half of the fix: a
:class:`ShmArena` is a named family of ``multiprocessing.shared_memory``
segments holding columnar buffers that any process — forked worker,
respawned worker, spawned process, eventually a remote host's agent —
can map knowing only the arena *name*.

Layout
------
An arena named ``A`` owns:

* a **header segment** named ``A`` — a tiny fixed-size directory:
  magic, format version, a seqlock word, and a JSON column table of
  ``(name, dtype, shape)`` descriptors.  ``ShmArena.attach("A")``
  reads it and can then map any column lazily;
* one **column segment** per column, named ``A.<column>`` — the raw
  little-endian buffer a numpy view (or a bytes blob) sits on.

Columns are append-only: the owner adds columns (the engine's
``DatasetArrays``/``TreeArrays`` buffers at startup, delta-shipped
payload blocks per flush — see :mod:`repro.core.payload`), workers only
read.  Directory updates use a seqlock (odd = write in progress) so a
reader racing a writer retries instead of parsing a torn table.

Lifecycle
---------
``close()`` and ``unlink()`` are both idempotent.  ``close()`` drops
this handle's mappings and so invalidates every view it handed out:
``SharedMemory.close()`` unmaps even while numpy views over ``buf``
are exported (no BufferError), so a stale view reads recycled pages or
segfaults.  The owner therefore restores private copies of every
attribute :meth:`share_arrays` re-pointed *before* unmapping, which
keeps ``DatasetArrays``/``TreeArrays`` hosts correct for any engine
built over the same dataset after teardown.  ``unlink()`` (alone)
removes the *names* from ``/dev/shm``;
POSIX keeps the memory alive for existing mappings, so the owner can
unlink eagerly while workers still hold views.  Attachment is
refcounted per process: repeated :meth:`ShmArena.attach` calls on one
name share a handle, and the final ``close()`` detaches it.

``resource_tracker`` discipline: CPython (< 3.13) registers a segment
with the resource tracker on *attach* as well as create — but every
process in one multiprocessing tree (fork or spawn) shares its root's
tracker, so the attach-side registration is an idempotent set-add that
must NOT be compensated: an explicit unregister from an attacher would
erase the creator's entry in the shared tracker and make the final
``unlink()`` raise ``KeyError`` noise inside the tracker process.  This
tier therefore leaves attach registrations alone and guarantees exactly
one unregister per segment (``SharedMemory.unlink`` at owner teardown),
leaving the tracker cache empty at interpreter shutdown — no "leaked
shared_memory" warnings, and SIGKILLed workers leave no registrations
of their own to clean.  A ``weakref.finalize`` on owner arenas unlinks
as a last resort, so even an abandoned arena leaves ``/dev/shm`` clean.

Attaching from an *unrelated* OS process — a socket-transport shard
host (:mod:`repro.serve.shardhost`) — is the one case where the rule
flips: that process runs its OWN resource tracker, so an attach-side
registration there is not an idempotent set-add into the creator's
tracker but a fresh entry in a foreign one, and the foreign tracker
would *unlink the creator's live segments* when the shard host exits.
Such a process declares itself via :func:`set_untracked_attach`, after
which every attach in the process maps segments without tracker
registration: natively with CPython 3.13's ``track=False``, and on
older interpreters by compensating the attach-side registration
immediately (safe exactly because the tracker is process-private
here — the in-tree prohibition above does not apply).
"""

from __future__ import annotations

import json
import os
import struct
import threading
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

try:  # optional, like repro.core.kernels: blobs work without numpy
    import numpy as np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    np = None
    HAS_NUMPY = False

__all__ = [
    "ShmArena",
    "ShmArenaError",
    "arena_segments",
    "set_untracked_attach",
    "untracked_attach_enabled",
    "SHM_PREFIX",
]

#: Every segment this tier creates starts with this prefix, so tests
#: (and the CI leak-check) can scan ``/dev/shm`` for leftovers without
#: tripping over unrelated segments.
SHM_PREFIX = "reproshm-"

#: Header segment layout: magic(8s) version(I) seq(I) length(I), then
#: ``length`` bytes of JSON at :data:`_HEADER_JSON_OFF`.
_HEADER_MAGIC = b"SHMARENA"
_HEADER_VERSION = 1
_HEADER_FMT = "<8sIII"
_HEADER_JSON_OFF = struct.calcsize(_HEADER_FMT)

#: Default directory capacity — generous for thousands of columns.
_HEADER_BYTES = 256 * 1024

_NAME_COUNTER = 0
_NAME_LOCK = threading.Lock()

#: Process-wide attach-tracking mode.  False (default): attaches go
#: through the stock ``SharedMemory`` constructor and the in-tree
#: tracker discipline in the module docstring applies.  True (set by
#: :func:`set_untracked_attach` in foreign-process attachers like the
#: socket shard host): attaches never leave a resource_tracker
#: registration behind in this process.
_UNTRACKED_ATTACH = False

#: Lazily resolved: does this interpreter's SharedMemory accept the
#: 3.13+ ``track=`` keyword?  (None = not probed yet.)
_HAS_TRACK_PARAM: Optional[bool] = None


def set_untracked_attach(enabled: bool = True) -> None:
    """Declare this process an *unrelated* attacher (shard host).

    Must be called before any arena attach in the process.  With it
    enabled, mapping an existing segment registers nothing with the
    process's resource tracker, so a shard host exiting (or crashing)
    can never tear down the coordinating owner's live ``/dev/shm``
    segments.  Owner-side creates are unaffected — exactly one process
    (the creator) stays responsible for the unlink.
    """
    global _UNTRACKED_ATTACH
    _UNTRACKED_ATTACH = bool(enabled)


def untracked_attach_enabled() -> bool:
    """Is this process in foreign-attacher (untracked) mode?"""
    return _UNTRACKED_ATTACH


def _track_param_supported() -> bool:
    global _HAS_TRACK_PARAM
    if _HAS_TRACK_PARAM is None:
        import inspect
        from multiprocessing import shared_memory

        _HAS_TRACK_PARAM = "track" in inspect.signature(
            shared_memory.SharedMemory.__init__
        ).parameters
    return _HAS_TRACK_PARAM


class ShmArenaError(RuntimeError):
    """Arena misuse or a missing/corrupt segment family."""


def _column_ok(name: str) -> bool:
    return bool(name) and all(
        ch.isalnum() or ch in "._-" for ch in name
    ) and "/" not in name


def arena_segments(prefix: str = SHM_PREFIX) -> List[str]:
    """Names under ``/dev/shm`` created by this tier (leak scanning)."""
    try:
        return sorted(n for n in os.listdir("/dev/shm") if n.startswith(prefix))
    except OSError:  # pragma: no cover - non-Linux fallback
        return []


def _finalize_owner(names: List[str]) -> None:
    """Last-resort unlink for an owner arena dropped without close().

    ``names`` is the arena's live mutable segment list (shared with the
    instance), so columns added after finalizer registration are still
    swept.  Runs from ``weakref.finalize`` — must not raise.
    """
    for name in list(names):
        ShmArena._unlink_by_name(name)
    names.clear()


class ShmArena:
    """A named registry of shared-memory columns one engine owns.

    Construct directly to *create* an arena (owner mode); use
    :meth:`attach` to map an existing one by name.  ``with`` support
    closes (and, for owners, unlinks) on exit.
    """

    #: Per-process attach registry: name -> (arena, refcount).  Guarded
    #: by _ATTACH_LOCK; makes attach/detach refcounted per the tier
    #: contract (N attaches need N closes before the mapping drops).
    _ATTACHED: Dict[str, Tuple["ShmArena", int]] = {}
    _ATTACH_LOCK = threading.Lock()

    def __init__(
        self,
        name: Optional[str] = None,
        *,
        header_bytes: int = _HEADER_BYTES,
        _attach: bool = False,
    ) -> None:
        global _NAME_COUNTER
        if name is not None and not _column_ok(name):
            raise ShmArenaError(f"invalid arena name {name!r}")
        if name is None:
            if _attach:
                raise ShmArenaError("attach requires an arena name")
            with _NAME_LOCK:
                _NAME_COUNTER += 1
                name = f"{SHM_PREFIX}{os.getpid()}-{_NAME_COUNTER}"
        self.name = name
        self.owner = not _attach
        self._closed = False
        self._unlinked = False
        #: column -> (dtype str | None for blobs, shape tuple, nbytes)
        self._columns: Dict[str, Tuple[Optional[str], Tuple[int, ...], int]] = {}
        self._segments: Dict[str, object] = {}  # column -> SharedMemory
        self._views: Dict[str, object] = {}     # column -> ndarray view
        #: (weakref(obj), attr, column) for every attribute that
        #: share_arrays re-pointed at an arena view; close() copies
        #: these back out before unmapping (see _restore_shared_attrs).
        self._shared_bindings: List[Tuple[object, str, str]] = []
        #: live segment names, shared with the owner finalizer so late
        #: columns are swept too.
        self._segment_names: List[str] = []
        self._lock = threading.RLock()
        if _attach:
            self._header = self._open(name, create=False)
            magic, version, _, _ = struct.unpack_from(
                _HEADER_FMT, self._header.buf, 0
            )
            if magic != _HEADER_MAGIC:
                self._header.close()
                raise ShmArenaError(f"{name!r} is not a ShmArena header")
            if version != _HEADER_VERSION:
                self._header.close()
                raise ShmArenaError(
                    f"arena {name!r} has format v{version}, expected "
                    f"v{_HEADER_VERSION}"
                )
            self._refresh_directory()
        else:
            self._header = self._open(name, create=True, size=header_bytes)
            struct.pack_into(
                _HEADER_FMT, self._header.buf, 0,
                _HEADER_MAGIC, _HEADER_VERSION, 0, 0,
            )
            self._segment_names.append(name)
            self._write_directory()
            self._finalizer = weakref.finalize(
                self, _finalize_owner, self._segment_names
            )

    # ------------------------------------------------------------------
    # Segment plumbing (the ONE place SharedMemory is constructed; the
    # shm-payload lint rule SM602 bans raw construction elsewhere)
    # ------------------------------------------------------------------
    @staticmethod
    def _open(name: str, create: bool, size: int = 0):
        from multiprocessing import shared_memory

        # CPython < 3.13 registers with the resource tracker on attach
        # too, but the whole multiprocessing tree shares one tracker, so
        # that registration is an idempotent set-add.  Do NOT unregister
        # it here: that would erase the creator's entry and turn the
        # final unlink() into tracker-side KeyError noise (see module
        # docstring).  The one exception is a process that declared
        # itself a *foreign* attacher (set_untracked_attach): its
        # tracker is process-private, and letting it register would make
        # the shard host's exit unlink the owner's live segments.
        if create or not _UNTRACKED_ATTACH:
            return shared_memory.SharedMemory(name=name, create=create, size=size)
        if _track_param_supported():
            return shared_memory.SharedMemory(name=name, track=False)
        from multiprocessing import resource_tracker

        seg = shared_memory.SharedMemory(name=name)
        try:
            # Compensate the attach-side registration in THIS process's
            # own tracker (safe: nothing else in the process registered
            # the name — see the module docstring's foreign-attach
            # paragraph).
            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker gone at shutdown
            pass
        return seg

    @staticmethod
    def _unlink_by_name(name: str) -> None:
        """Unlink one segment by name; silent if already gone."""
        try:
            seg = ShmArena._open(name, create=False)
        except (FileNotFoundError, OSError, ValueError):
            return
        try:
            seg.unlink()
        except (FileNotFoundError, OSError):
            pass
        try:
            seg.close()
        except BufferError:  # pragma: no cover - no views on a fresh map
            pass

    @classmethod
    def read_column_bytes(cls, arena_name: str, column: str) -> bytes:
        """Copy one column's raw bytes out by name, mapping nothing
        afterwards — the worker-side payload-codec fast path (open,
        copy, close: a SIGKILLed worker holds no arena state at all).
        """
        seg = cls._open(f"{arena_name}.{column}", create=False)
        try:
            return bytes(seg.buf)
        finally:
            seg.close()

    # ------------------------------------------------------------------
    # Attach / detach (refcounted per process)
    # ------------------------------------------------------------------
    @classmethod
    def attach(cls, name: str) -> "ShmArena":
        """Map an existing arena from its name alone (header directory).

        Refcounted: attaching an already-attached name returns the same
        handle; each handle needs a matching :meth:`close`.
        """
        with cls._ATTACH_LOCK:
            entry = cls._ATTACHED.get(name)
            if entry is not None:
                arena, refs = entry
                cls._ATTACHED[name] = (arena, refs + 1)
                return arena
            arena = cls(name, _attach=True)
            cls._ATTACHED[name] = (arena, 1)
            return arena

    @classmethod
    def attach_count(cls, name: str) -> int:
        """Current process-local refcount for ``name`` (introspection)."""
        with cls._ATTACH_LOCK:
            entry = cls._ATTACHED.get(name)
            return 0 if entry is None else entry[1]

    def _refresh_directory(self) -> None:
        """(Re)read the header column table, seqlock-retried."""
        buf = self._header.buf
        for _ in range(1000):
            _, _, seq0, length = struct.unpack_from(_HEADER_FMT, buf, 0)
            if seq0 % 2:  # write in progress
                continue
            raw = bytes(buf[_HEADER_JSON_OFF:_HEADER_JSON_OFF + length])
            _, _, seq1, _ = struct.unpack_from(_HEADER_FMT, buf, 0)
            if seq0 == seq1:
                break
        else:  # pragma: no cover - requires a wedged writer
            raise ShmArenaError(f"arena {self.name!r} directory never settled")
        table = json.loads(raw.decode("utf-8")) if raw else {"columns": []}
        self._columns = {
            col["name"]: (col["dtype"], tuple(col["shape"]), col["nbytes"])
            for col in table["columns"]
        }

    def _write_directory(self) -> None:
        table = {
            "columns": [
                {"name": n, "dtype": d, "shape": list(s), "nbytes": b}
                for n, (d, s, b) in self._columns.items()
            ]
        }
        raw = json.dumps(table, separators=(",", ":")).encode("utf-8")
        buf = self._header.buf
        capacity = len(buf) - _HEADER_JSON_OFF
        if len(raw) > capacity:
            raise ShmArenaError(
                f"arena {self.name!r} directory overflow: {len(raw)} bytes "
                f"of descriptors > {capacity} header capacity"
            )
        _, _, seq, _ = struct.unpack_from(_HEADER_FMT, buf, 0)
        struct.pack_into(  # odd seq: readers retry until we finish
            _HEADER_FMT, buf, 0, _HEADER_MAGIC, _HEADER_VERSION, seq + 1, len(raw)
        )
        buf[_HEADER_JSON_OFF:_HEADER_JSON_OFF + len(raw)] = raw
        struct.pack_into(
            _HEADER_FMT, buf, 0, _HEADER_MAGIC, _HEADER_VERSION, seq + 2, len(raw)
        )

    # ------------------------------------------------------------------
    # Columns
    # ------------------------------------------------------------------
    def columns(self) -> Dict[str, Tuple[Optional[str], Tuple[int, ...], int]]:
        """``column -> (dtype | None, shape, nbytes)`` descriptor map."""
        return dict(self._columns)

    def __contains__(self, column: str) -> bool:
        return column in self._columns

    def _require_owner(self, op: str) -> None:
        if not self.owner:
            raise ShmArenaError(f"{op} requires the owning arena handle")
        if self._closed or self._unlinked:
            raise ShmArenaError(f"{op} on a closed arena {self.name!r}")

    def _new_segment(self, column: str, nbytes: int):
        if not _column_ok(column):
            raise ShmArenaError(f"invalid column name {column!r}")
        if column in self._columns:
            raise ShmArenaError(
                f"column {column!r} already exists in arena {self.name!r}"
            )
        seg = self._open(f"{self.name}.{column}", create=True, size=max(1, nbytes))
        self._segments[column] = seg
        self._segment_names.append(f"{self.name}.{column}")
        return seg

    def add_array(self, column: str, array) -> "np.ndarray":
        """Copy ``array`` into a new column; return the shared view.

        The view is marked read-only: shared columns are the engine's
        published state, and silent in-place mutation from one process
        would desynchronize every attached reader.
        """
        with self._lock:
            self._require_owner("add_array")
            if not HAS_NUMPY:
                raise ShmArenaError("add_array requires numpy")
            array = np.ascontiguousarray(array)
            seg = self._new_segment(column, array.nbytes)
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=seg.buf)
            view[...] = array
            view.flags.writeable = False
            self._columns[column] = (
                array.dtype.str, tuple(array.shape), array.nbytes
            )
            self._views[column] = view
            self._write_directory()
            return view

    def add_bytes(self, column: str, data: bytes) -> None:
        """Copy an opaque byte blob into a new column (codec payloads)."""
        with self._lock:
            self._require_owner("add_bytes")
            seg = self._new_segment(column, len(data))
            seg.buf[: len(data)] = data
            self._columns[column] = (None, (len(data),), len(data))
            self._write_directory()

    def drop_column(self, column: str) -> None:
        """Retire one column: remove it from the directory, unlink its
        segment, and drop the owner's mapping (idempotent).  *Other
        processes'* mappings stay valid, but any local :meth:`get` view
        of the column dangles — only drop columns whose readers copy
        bytes out (the payload codec's superseded delta blocks).
        """
        with self._lock:
            self._require_owner("drop_column")
            if column not in self._columns:
                return
            del self._columns[column]
            self._views.pop(column, None)
            seg = self._segments.pop(column, None)
            name = f"{self.name}.{column}"
            if name in self._segment_names:
                self._segment_names.remove(name)
            self._write_directory()
            if seg is None:
                self._unlink_by_name(name)
                return
            try:
                seg.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
            try:
                seg.close()
            except BufferError:  # pragma: no cover - exported blob view
                pass

    def get(self, column: str):
        """The numpy view over one column (mapped lazily on attach)."""
        with self._lock:
            if self._closed:
                raise ShmArenaError(f"get on a closed arena {self.name!r}")
            view = self._views.get(column)
            if view is not None:
                return view
            if column not in self._columns and not self.owner:
                self._refresh_directory()  # added since we attached?
            if column not in self._columns:
                raise KeyError(column)
            dtype, shape, _ = self._columns[column]
            if dtype is None:
                raise ShmArenaError(
                    f"column {column!r} is a byte blob; use get_bytes"
                )
            if not HAS_NUMPY:
                raise ShmArenaError("array views require numpy")
            seg = self._segments.get(column)
            if seg is None:
                seg = self._open(f"{self.name}.{column}", create=False)
                self._segments[column] = seg
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)
            view.flags.writeable = False
            self._views[column] = view
            return view

    def get_bytes(self, column: str) -> bytes:
        """Copy one blob column out (no mapping kept)."""
        with self._lock:
            if column not in self._columns and not self.owner:
                self._refresh_directory()
            if column not in self._columns:
                raise KeyError(column)
        return self.read_column_bytes(self.name, column)

    def share_arrays(self, obj, attrs: Sequence[str], prefix: str) -> List[str]:
        """Move ``obj.<attr>`` numpy arrays into columns; re-point the
        attributes at the shared views.  Returns the column names.

        The copy preserves every byte, so downstream kernels are
        bitwise-identical; attributes that are ``None`` are skipped
        (optional arrays stay optional).
        """
        shared = []
        for attr in attrs:
            array = getattr(obj, attr)
            if array is None:
                continue
            column = f"{prefix}.{attr}"
            if column in self._columns:
                raise ShmArenaError(
                    f"{type(obj).__name__} already shared under {prefix!r}"
                )
            setattr(obj, attr, self.add_array(column, array))
            self._shared_bindings.append((weakref.ref(obj), attr, column))
            shared.append(column)
        return shared

    def _restore_shared_attrs(self) -> None:
        """Copy shared attributes back to private arrays pre-unmap.

        ``SharedMemory.close()`` unmaps the segment even while numpy
        views over ``buf`` are exported — no BufferError — so any
        attribute :meth:`share_arrays` re-pointed would dangle over
        unmapped (or, worse, recycled) pages.  Restoring a private copy
        while the mapping is still live keeps the host objects correct
        for every engine built over the same dataset afterwards.  An
        attribute that no longer points at this arena's view (re-shared
        into a newer arena, or replaced by the caller) is left alone.
        """
        for ref, attr, column in self._shared_bindings:
            obj = ref()
            if obj is None:
                continue
            current = getattr(obj, attr, None)
            if current is None or current is not self._views.get(column):
                continue
            restored = np.array(current, copy=True)
            restored.flags.writeable = False
            setattr(obj, attr, restored)
        self._shared_bindings.clear()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach this handle (idempotent).

        For refcounted attach handles, drops one reference and unmaps
        only at zero.  Unmapping invalidates every view handed out by
        :meth:`get` — ``SharedMemory.close()`` drops the mapping even
        while numpy views are exported — so the owner path first
        restores private copies of every attribute ``share_arrays``
        re-pointed, keeping the host objects usable past teardown.
        """
        if not self.owner:
            with self._ATTACH_LOCK:
                entry = self._ATTACHED.get(self.name)
                if entry is not None:
                    arena, refs = entry
                    if arena is self and refs > 1:
                        self._ATTACHED[self.name] = (arena, refs - 1)
                        return
                    if arena is self:
                        del self._ATTACHED[self.name]
        with self._lock:
            if self._closed:
                return
            if self.owner and self._shared_bindings:
                self._restore_shared_attrs()
            self._closed = True
            self._views.clear()
            for seg in list(self._segments.values()) + [self._header]:
                try:
                    seg.close()
                except BufferError:  # pragma: no cover - platform quirk
                    pass
            self._segments.clear()

    def unlink(self) -> None:
        """Remove every segment name from the system (idempotent).

        Existing mappings (local views, workers mid-task) stay valid;
        the memory is reclaimed when the last mapping drops.  After
        unlink, :meth:`attach` by name fails — exactly the signal the
        pool supervisor needs if it respawns past the arena's lifetime.
        """
        with self._lock:
            if self._unlinked:
                return
            self._unlinked = True
            for name in list(self._segment_names):
                self._unlink_by_name(name)
            self._segment_names.clear()
            if self.owner and hasattr(self, "_finalizer"):
                self._finalizer.detach()

    def destroy(self) -> None:
        """``unlink()`` + ``close()`` — the owner's teardown."""
        self.unlink()
        self.close()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        if self.owner:
            self.destroy()
        else:
            self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "owner" if self.owner else "attached"
        return (
            f"<ShmArena {self.name!r} {role} columns={len(self._columns)}"
            f"{' closed' if self._closed else ''}>"
        )
