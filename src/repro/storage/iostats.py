"""Simulated I/O accounting, matching the paper's experimental setup.

Section 8: "we report simulated I/O costs ... The number of simulated
I/Os is increased by 1 when a node of a tree is visited.  When an
inverted file is loaded, the number of simulated I/Os is increased by
the number of blocks (4 kB per block) for storing the list."

:class:`IOCounter` implements exactly that model.  Algorithms charge
costs through the index objects (which know their node/list sizes), and
benchmarks snapshot/reset counters around each measured query to obtain
the MIOCPU metric (mean I/O cost per user).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["IOCounter", "IOSnapshot", "PAGE_SIZE_BYTES"]

#: The paper fixes the page size at 4 kB.
PAGE_SIZE_BYTES = 4096


@dataclass(slots=True)
class IOSnapshot:
    """Immutable snapshot of an :class:`IOCounter` at one instant."""

    node_visits: int
    invfile_blocks: int

    @property
    def total(self) -> int:
        return self.node_visits + self.invfile_blocks

    def __sub__(self, other: "IOSnapshot") -> "IOSnapshot":
        return IOSnapshot(
            node_visits=self.node_visits - other.node_visits,
            invfile_blocks=self.invfile_blocks - other.invfile_blocks,
        )


@dataclass
class IOCounter:
    """Mutable simulated-I/O counter.

    ``node_visits`` counts tree node accesses (1 I/O each);
    ``invfile_blocks`` counts 4 kB blocks of inverted lists loaded.
    """

    node_visits: int = 0
    invfile_blocks: int = 0
    page_size: int = PAGE_SIZE_BYTES

    @property
    def total(self) -> int:
        """Total simulated I/Os."""
        return self.node_visits + self.invfile_blocks

    def visit_node(self) -> None:
        """Charge one node access."""
        self.node_visits += 1

    def load_bytes(self, num_bytes: int) -> None:
        """Charge ``ceil(num_bytes / page_size)`` block reads."""
        if num_bytes <= 0:
            return
        self.invfile_blocks += math.ceil(num_bytes / self.page_size)

    def load_blocks(self, blocks: int) -> None:
        """Charge a precomputed number of block reads."""
        if blocks > 0:
            self.invfile_blocks += blocks

    def reset(self) -> None:
        self.node_visits = 0
        self.invfile_blocks = 0

    def snapshot(self) -> IOSnapshot:
        return IOSnapshot(self.node_visits, self.invfile_blocks)
