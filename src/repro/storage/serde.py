"""Binary serialization of the spatial-textual indexes.

The I/O cost model (``repro.storage.pager``) prices nodes and posting
lists by a byte layout; this module makes that layout real: trees are
written to and read back from an actual page-structured binary image,
so the simulated sizes are backed by a concrete encoding rather than a
guess.  It also gives the library persistence — build the MIR-tree
once, ship the image, reload it elsewhere.

Layout
------
The image is a sequence of length-prefixed records::

    header   : magic "MIRT"/"MIUR" | version u16 | fanout u16 |
               minmax u8 | node_count u32 | object_count u32
    node     : page_id u32 | flags u8 (leaf bit) | rect 4*f64 |
               entry_count u16 | entries | inverted file
    leaf entry     : item_id u32 | x f64 | y f64
    internal entry : child page_id u32
    inverted file  : term_count u32, then per term:
                     term_id u32 | posting_count u32, then per posting:
                     entry_key u32 | maxw f64 [| minw f64]

Documents (term-frequency maps) are stored in a trailing dictionary so
a reloaded tree can answer queries without the original dataset object.
All integers are little-endian; floats are IEEE-754.
"""

from __future__ import annotations

import io
import struct
import zlib
from typing import BinaryIO, Dict, List, Tuple

from ..index.invfile import InvertedFile, Posting
from ..index.irtree import IRTree, MIRTree
from ..model.objects import STObject
from ..spatial.geometry import Point, Rect
from ..spatial.rtree import RTree, RTreeNode, RTreeEntry
from ..text.relevance import TextRelevance

__all__ = ["serialize_irtree", "deserialize_irtree", "image_size", "SerdeError"]

_MAGIC = b"MIRT"
_VERSION = 1


class SerdeError(ValueError):
    """Raised when an image is malformed or version-incompatible."""


def _w(fmt: str, buf: BinaryIO, *values) -> None:
    buf.write(struct.pack("<" + fmt, *values))


def _r(fmt: str, buf: BinaryIO):
    size = struct.calcsize("<" + fmt)
    data = buf.read(size)
    if len(data) != size:
        raise SerdeError("truncated image")
    return struct.unpack("<" + fmt, data)


def _write_invfile(buf: BinaryIO, inv: InvertedFile) -> None:
    terms = sorted(inv.terms())
    _w("I", buf, len(terms))
    for tid in terms:
        postings = inv.postings(tid)
        _w("II", buf, tid, len(postings))
        for p in postings:
            if inv.minmax:
                _w("Idd", buf, p.entry_key, p.max_weight, p.min_weight)
            else:
                _w("Id", buf, p.entry_key, p.max_weight)


def _read_invfile(buf: BinaryIO, minmax: bool) -> InvertedFile:
    inv = InvertedFile(minmax=minmax)
    (term_count,) = _r("I", buf)
    for _ in range(term_count):
        tid, n = _r("II", buf)
        max_w: Dict[int, float] = {}
        min_w: Dict[int, float] = {}
        plist = inv._lists.setdefault(tid, [])  # serde is a friend module
        for _ in range(n):
            if minmax:
                key, maxw, minw = _r("Idd", buf)
            else:
                key, maxw = _r("Id", buf)
                minw = maxw
            plist.append(Posting(key, maxw, minw))
    return inv


def _write_node(buf: BinaryIO, tree: IRTree, node: RTreeNode[int]) -> None:
    flags = 1 if node.is_leaf else 0
    _w("IB", buf, node.page_id, flags)
    _w("dddd", buf, node.rect.min_x, node.rect.min_y, node.rect.max_x, node.rect.max_y)
    if node.is_leaf:
        _w("H", buf, len(node.entries))
        for e in node.entries:
            _w("Idd", buf, e.item, e.point.x, e.point.y)
    else:
        _w("H", buf, len(node.children))
        for c in node.children:
            _w("I", buf, c.page_id)
    _write_invfile(buf, tree.invfile_of(node))


def serialize_irtree(tree: IRTree) -> bytes:
    """Encode an IR-tree or MIR-tree (with its documents) to bytes."""
    buf = io.BytesIO()
    nodes = list(tree.rtree.iter_nodes())
    buf.write(_MAGIC)
    _w("HHB", buf, _VERSION, tree.fanout, 1 if tree.minmax else 0)
    _w("II", buf, len(nodes), len(tree))
    _w("I", buf, tree.root.page_id)
    for node in sorted(nodes, key=lambda n: n.page_id):
        _write_node(buf, tree, node)
    # trailing document dictionary
    for node in nodes:
        if not node.is_leaf:
            continue
        for e in node.entries:
            obj = tree.object_by_id(e.item)
            _w("II", buf, obj.item_id, len(obj.terms))
            for tid, tf in sorted(obj.terms.items()):
                _w("II", buf, tid, tf)
    payload = buf.getvalue()
    return payload + struct.pack("<I", zlib.crc32(payload))


def deserialize_irtree(data: bytes, relevance: TextRelevance) -> IRTree:
    """Rebuild a tree from :func:`serialize_irtree` output.

    ``relevance`` must be the measure the tree was built with (its
    fitted statistics are not part of the image; refit it on the
    documents the image carries if needed — see the tests).
    """
    if len(data) < 4:
        raise SerdeError("image too small")
    payload, crc = data[:-4], struct.unpack("<I", data[-4:])[0]
    if zlib.crc32(payload) != crc:
        raise SerdeError("checksum mismatch")
    buf = io.BytesIO(payload)
    if buf.read(4) != _MAGIC:
        raise SerdeError("bad magic")
    version, fanout, minmax = _r("HHB", buf)
    if version != _VERSION:
        raise SerdeError(f"unsupported version {version}")
    node_count, object_count = _r("II", buf)
    (root_id,) = _r("I", buf)

    raw_nodes: Dict[int, Tuple[bool, Rect, List, InvertedFile]] = {}
    for _ in range(node_count):
        page_id, flags = _r("IB", buf)
        x0, y0, x1, y1 = _r("dddd", buf)
        rect = Rect(x0, y0, x1, y1)
        (entry_count,) = _r("H", buf)
        is_leaf = bool(flags & 1)
        entries: List = []
        for _ in range(entry_count):
            if is_leaf:
                item, x, y = _r("Idd", buf)
                entries.append((item, Point(x, y)))
            else:
                entries.append(_r("I", buf)[0])
        inv = _read_invfile(buf, bool(minmax))
        raw_nodes[page_id] = (is_leaf, rect, entries, inv)

    docs: Dict[int, Dict[int, int]] = {}
    for _ in range(object_count):
        oid, nterms = _r("II", buf)
        docs[oid] = {}
        for _ in range(nterms):
            tid, tf = _r("II", buf)
            docs[oid][tid] = tf

    # Reassemble RTreeNode graph.
    built: Dict[int, RTreeNode[int]] = {}

    def build(page_id: int) -> RTreeNode[int]:
        if page_id in built:
            return built[page_id]
        is_leaf, rect, entries, _inv = raw_nodes[page_id]
        if is_leaf:
            node = RTreeNode[int](
                is_leaf=True,
                rect=rect,
                entries=[RTreeEntry(point=p, item=item) for item, p in entries],
            )
            node.subtree_count = len(entries)
        else:
            children = [build(cid) for cid in entries]
            node = RTreeNode[int](is_leaf=False, rect=rect, children=children)
            node.subtree_count = sum(c.subtree_count for c in children)
        node.page_id = page_id
        built[page_id] = node
        return node

    root = build(root_id)

    # Assemble the tree object without re-running construction.
    tree = object.__new__(MIRTree if minmax else IRTree)
    tree.relevance = relevance
    tree.minmax = bool(minmax)
    tree.fanout = fanout
    objects = {
        oid: STObject(item_id=oid, location=_object_location(raw_nodes, oid), terms=terms)
        for oid, terms in docs.items()
    }
    tree._objects = objects
    tree._doc_weights = {
        oid: relevance.document_weights(terms) for oid, terms in docs.items()
    }
    rtree: RTree[int] = RTree(fanout=fanout)
    rtree.root = root
    rtree._size = object_count
    rtree._next_page = max(raw_nodes) + 1
    tree.rtree = rtree
    tree._invfiles = {pid: raw_nodes[pid][3] for pid in raw_nodes}
    tree._summaries = {}
    _rebuild_summaries(tree, root)
    return tree


def _object_location(raw_nodes, oid: int) -> Point:
    for is_leaf, _rect, entries, _inv in raw_nodes.values():
        if is_leaf:
            for item, p in entries:
                if item == oid:
                    return p
    raise SerdeError(f"object {oid} missing from leaf entries")


def _rebuild_summaries(tree: IRTree, node: RTreeNode[int]):
    """Recompute subtree summaries from the reloaded posting lists."""
    from ..index.invfile import merge_minmax
    from ..index.irtree import _merge_summaries

    if node.is_leaf:
        summary = merge_minmax([tree._doc_weights[e.item] for e in node.entries])
    else:
        summary = _merge_summaries([_rebuild_summaries(tree, c) for c in node.children])
    tree._summaries[node.page_id] = summary
    return summary


def image_size(tree: IRTree) -> int:
    """Size in bytes of the tree's serialized image."""
    return len(serialize_irtree(tree))
