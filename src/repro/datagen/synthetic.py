"""Synthetic spatial-textual collections standing in for Flickr and Yelp.

The paper evaluates on two real collections we cannot ship (a Yahoo
Flickr extract and the Yelp academic dataset).  The algorithms consume
nothing but ``(location, term multiset)`` pairs, so a faithful synthetic
stand-in needs to match the *shape* the experiments depend on:

* **Flickr-like** — many objects, short documents (~7 distinct tags,
  Table 4 reports 6.9), large vocabulary, heavy-tailed (Zipf) term
  usage, spatially clustered around "cities";
* **Yelp-like** — far fewer objects but very long documents (~400
  distinct terms/object in Table 4: reviews concatenated per business).

Both generators are deterministic under a seed and emit
:class:`~repro.model.objects.STObject` lists plus the shared
:class:`~repro.text.vocabulary.Vocabulary`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..model.objects import STObject
from ..spatial.geometry import Point
from ..text.vocabulary import Vocabulary

__all__ = ["SpaceConfig", "flickr_like", "yelp_like", "zipf_term_sampler"]

#: Side length of the synthetic dataspace.  The paper's user areas are
#: 1–20 "degrees"; a 50x50 space keeps the default 5x5 user area a small
#: fraction of the whole, like a city inside a continent-scale extract.
DEFAULT_SPACE = 50.0


@dataclass(slots=True)
class SpaceConfig:
    """Geometry of the synthetic dataspace."""

    side: float = DEFAULT_SPACE
    num_clusters: int = 24
    cluster_std: float = 1.5
    #: Fraction of objects scattered uniformly (background noise).
    uniform_fraction: float = 0.2


def zipf_term_sampler(
    rng: np.random.Generator, vocab_size: int, exponent: float = 1.1
) -> np.ndarray:
    """Zipf-shaped probability vector over ``vocab_size`` term ids.

    Real tag/review vocabularies are heavy-tailed; the exponent ~1.1
    reproduces a few extremely common terms plus a long tail, which is
    what makes the min/max posting-list bounds interesting (common
    terms appear in most subtrees, rare terms in few).
    """
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    probs = ranks ** (-exponent)
    probs /= probs.sum()
    # Shuffle so term id order does not encode frequency rank.
    perm = rng.permutation(vocab_size)
    return probs[perm]


def _cluster_locations(
    rng: np.random.Generator, n: int, space: SpaceConfig
) -> np.ndarray:
    """Locations drawn from Gaussian clusters plus uniform background."""
    n_uniform = int(n * space.uniform_fraction)
    n_cluster = n - n_uniform
    centers = rng.uniform(0.0, space.side, size=(space.num_clusters, 2))
    assignment = rng.integers(0, space.num_clusters, size=n_cluster)
    pts = centers[assignment] + rng.normal(0.0, space.cluster_std, size=(n_cluster, 2))
    uniform = rng.uniform(0.0, space.side, size=(n_uniform, 2))
    all_pts = np.vstack([pts, uniform])
    np.clip(all_pts, 0.0, space.side, out=all_pts)
    rng.shuffle(all_pts, axis=0)
    return all_pts


def _make_documents(
    rng: np.random.Generator,
    n: int,
    vocab_size: int,
    mean_unique_terms: float,
    tf_max: int,
    zipf_exponent: float,
) -> List[Dict[int, int]]:
    """Documents with Poisson-distributed unique-term counts."""
    probs = zipf_term_sampler(rng, vocab_size, exponent=zipf_exponent)
    docs: List[Dict[int, int]] = []
    for _ in range(n):
        n_terms = max(1, int(rng.poisson(mean_unique_terms)))
        n_terms = min(n_terms, vocab_size)
        terms = rng.choice(vocab_size, size=n_terms, replace=False, p=probs)
        if tf_max <= 1:
            doc = {int(t): 1 for t in terms}
        else:
            tfs = 1 + rng.integers(0, tf_max, size=n_terms)
            doc = {int(t): int(tf) for t, tf in zip(terms, tfs)}
        docs.append(doc)
    return docs


def _build_objects(
    locations: np.ndarray, docs: List[Dict[int, int]], prefix: str
) -> Tuple[List[STObject], Vocabulary]:
    vocab = Vocabulary()
    objects: List[STObject] = []
    for i, (loc, doc) in enumerate(zip(locations, docs)):
        terms = {vocab.add(f"{prefix}{tid}"): tf for tid, tf in doc.items()}
        objects.append(
            STObject(item_id=i, location=Point(float(loc[0]), float(loc[1])), terms=terms)
        )
    return objects, vocab


def flickr_like(
    num_objects: int = 4000,
    vocab_size: int = 2000,
    mean_tags: float = 6.9,
    space: Optional[SpaceConfig] = None,
    seed: int = 0,
) -> Tuple[List[STObject], Vocabulary]:
    """Flickr-shaped collection: short tag documents, clustered space.

    Defaults mirror Table 4's *ratios* at a pure-Python-friendly scale:
    ~7 unique tags per object and a vocabulary about half the object
    count (1M objects / 166k unique terms in the paper).
    """
    rng = np.random.default_rng(seed)
    space = space or SpaceConfig()
    locations = _cluster_locations(rng, num_objects, space)
    docs = _make_documents(
        rng,
        num_objects,
        vocab_size,
        mean_unique_terms=mean_tags,
        tf_max=1,  # photo tags occur once
        zipf_exponent=1.1,
    )
    return _build_objects(locations, docs, prefix="tag")


def yelp_like(
    num_objects: int = 600,
    vocab_size: int = 3000,
    mean_terms: float = 120.0,
    space: Optional[SpaceConfig] = None,
    seed: int = 0,
) -> Tuple[List[STObject], Vocabulary]:
    """Yelp-shaped collection: few objects, long review documents.

    Table 4 shows ~399 unique terms per business with repeated
    occurrences (77.8M total terms over 61k businesses).  We keep the
    long-document character (hundreds of term slots, tf up to 8) at a
    reduced scale.
    """
    rng = np.random.default_rng(seed)
    space = space or SpaceConfig(num_clusters=8, cluster_std=2.5)
    locations = _cluster_locations(rng, num_objects, space)
    docs = _make_documents(
        rng,
        num_objects,
        vocab_size,
        mean_unique_terms=mean_terms,
        tf_max=8,  # review text repeats terms
        zipf_exponent=1.05,
    )
    return _build_objects(locations, docs, prefix="rev")
