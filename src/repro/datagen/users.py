"""User generation following the paper's protocol (Section 8).

For the Flickr dataset the paper generates users like this: pick an
area of fixed size (default 5x5 degrees), sample ``|U|`` objects inside
it and take their locations as user locations; pool ``UW`` keywords
sampled from those objects' tags; distribute the pool over the users so
each user carries ``UL`` keywords following the pool's own term
distribution.  The pooled ``UW`` keywords double as the candidate
keyword set ``W`` of the query, and candidate locations are drawn from
the same area.

:func:`generate_users` reproduces that protocol; the returned
:class:`UserWorkload` also carries everything a MaxBRSTkNN query needs
(candidate keywords, candidate locations, and a fresh query object).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..model.objects import STObject, User
from ..spatial.geometry import Point, Rect

__all__ = ["UserWorkload", "generate_users", "candidate_locations", "query_pool"]


@dataclass(slots=True)
class UserWorkload:
    """Users plus the query ingredients derived with them."""

    users: List[User]
    #: Candidate keyword ids ``W`` (the pooled UW keywords).
    candidate_keywords: List[int]
    #: The area users were drawn from.
    area: Rect
    #: Candidate locations ``L`` inside the area.
    locations: List[Point] = field(default_factory=list)

    def query_object(self, object_id: int = -1, terms: Optional[Dict[int, int]] = None) -> STObject:
        """A fresh query object ``ox`` centred in the user area.

        ``ox`` starts with an empty description unless ``terms`` given —
        Definition 1 allows both; the chosen keywords are added on top.
        """
        return STObject(
            item_id=object_id, location=self.area.center, terms=dict(terms or {})
        )


def _pick_area(
    rng: np.random.Generator, objects: Sequence[STObject], area_side: float
) -> Tuple[Rect, List[STObject]]:
    """Pick an area of side ``area_side`` containing enough objects.

    Areas are centred on randomly chosen objects so dense regions are
    preferred, like picking a populated 5x5-degree window on Flickr.
    """
    best: Tuple[int, Rect, List[STObject]] = (-1, Rect(0, 0, area_side, area_side), [])
    for _ in range(32):
        anchor = objects[int(rng.integers(0, len(objects)))]
        half = area_side / 2.0
        rect = Rect(
            anchor.location.x - half,
            anchor.location.y - half,
            anchor.location.x + half,
            anchor.location.y + half,
        )
        inside = [o for o in objects if rect.contains_point(o.location)]
        if len(inside) > best[0]:
            best = (len(inside), rect, inside)
    return best[1], best[2]


def generate_users(
    objects: Sequence[STObject],
    num_users: int = 400,
    keywords_per_user: int = 3,
    unique_keywords: int = 20,
    area_side: float = 5.0,
    seed: int = 0,
) -> UserWorkload:
    """Generate users per the paper's Section 8 protocol.

    Parameters map one-to-one onto the paper's knobs: ``num_users`` is
    ``|U|``, ``keywords_per_user`` is ``UL``, ``unique_keywords`` is
    ``UW``, ``area_side`` is ``Area`` (the user-MBR side length).
    """
    if not objects:
        raise ValueError("cannot generate users from an empty object set")
    if keywords_per_user > unique_keywords:
        raise ValueError("UL cannot exceed UW (users draw from the pooled keywords)")
    rng = np.random.default_rng(seed)
    area, inside = _pick_area(rng, objects, area_side)
    pool_objects = inside if inside else list(objects)

    # User locations: |U| object locations from the area (with
    # replacement when the area holds fewer objects than users).
    replace = len(pool_objects) < num_users
    idx = rng.choice(len(pool_objects), size=num_users, replace=replace)
    locations = [pool_objects[i].location for i in idx]

    # Keyword pool: UW distinct keywords sampled from the area's
    # objects, weighted by how often they occur there (so the pool
    # follows the local tag distribution).
    term_freq: Dict[int, int] = {}
    for o in pool_objects:
        for tid, tf in o.terms.items():
            term_freq[tid] = term_freq.get(tid, 0) + tf
    all_terms = sorted(term_freq)
    if not all_terms:
        raise ValueError("area objects carry no keywords")
    weights = np.array([term_freq[t] for t in all_terms], dtype=np.float64)
    weights /= weights.sum()
    take = min(unique_keywords, len(all_terms))
    pool = rng.choice(all_terms, size=take, replace=False, p=weights)
    pool = [int(t) for t in pool]

    # Distribute pool keywords to users following the pool distribution.
    pool_w = np.array([term_freq[t] for t in pool], dtype=np.float64)
    pool_w /= pool_w.sum()
    users: List[User] = []
    for uid, loc in enumerate(locations):
        ul = min(keywords_per_user, len(pool))
        chosen = rng.choice(len(pool), size=ul, replace=False, p=pool_w)
        terms = {pool[int(c)]: 1 for c in chosen}
        users.append(User(item_id=uid, location=loc, terms=terms))

    return UserWorkload(users=users, candidate_keywords=sorted(pool), area=area)


def candidate_locations(
    workload: UserWorkload, num_locations: int = 20, seed: int = 0
) -> List[Point]:
    """Draw candidate locations ``L`` uniformly inside the user area."""
    rng = np.random.default_rng(seed + 1_000_003)
    area = workload.area
    xs = rng.uniform(area.min_x, area.max_x, size=num_locations)
    ys = rng.uniform(area.min_y, area.max_y, size=num_locations)
    locs = [Point(float(x), float(y)) for x, y in zip(xs, ys)]
    workload.locations = locs
    return locs


def query_pool(
    workload: UserWorkload,
    count: int,
    *,
    num_locations: int = 20,
    ws: int = 2,
    k: int = 10,
    seed: int = 0,
    seed_stride: int = 1,
):
    """``count`` distinct MaxBRSTkNN queries over one workload.

    Each query gets fresh candidate locations (re-seeded with
    ``seed + seed_stride * i``, mutating ``workload.locations`` like
    :func:`candidate_locations` does) and a fresh negative-id query
    object.  The CLI, the serving benchmarks, and the examples all
    build their pools here.
    """
    from ..core.query import MaxBRSTkNNQuery

    queries = []
    for i in range(count):
        candidate_locations(
            workload, num_locations=num_locations, seed=seed + seed_stride * i
        )
        queries.append(
            MaxBRSTkNNQuery(
                ox=workload.query_object(object_id=-(i + 1)),
                locations=list(workload.locations),
                keywords=list(workload.candidate_keywords),
                ws=ws,
                k=k,
            )
        )
    return queries
