"""User-set partitioning for sharded serving.

The MaxBRSTkNN answer aggregates over the *entire* user set, but every
per-user quantity in the pipeline — ``RSk(u)`` thresholds (Algorithm 2)
and the per-location shortlist test ``UBL(l, u) >= RSk(u)`` (Algorithm
3) — depends only on the object side and on ``u`` itself.  The user set
can therefore be split across shards and the per-shard contributions
merged back exactly (see ``repro.core.partial``).  This module owns the
splitting.

Two strategies:

* ``hash`` — a deterministic integer mix of the user id.  Shards get
  statistically equal user counts regardless of geometry; the baseline
  strategy, and the right one when queries touch users everywhere.
* ``grid`` — a spatial grid over the users' bounding box; cells are
  dealt to shards round-robin in row-major order.  Co-located users
  land on the same shard, which keeps each shard's working set spatially
  coherent (cache-friendly refinement) at the cost of skew when users
  cluster.

Both are **stable**: the assignment is a pure function of (user ids,
locations, shard count), independent of iteration order, Python hash
randomization, or process boundaries — the same dataset partitions the
same way in every worker of a fork pool and across runs.  Users keep
their original ids; a shard's user list preserves the dataset's user
order (the merge relies on both).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..model.dataset import Dataset
from ..model.objects import User
from ..spatial.geometry import Rect

__all__ = ["PARTITIONERS", "ShardAssignment", "UserPartitioner", "partition_users"]

#: Recognized strategy names (mirrored by ``core.config.Partitioner``).
PARTITIONERS = ("hash", "grid")


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: a deterministic, well-spread 64-bit mix.

    Python's builtin ``hash`` is identity on small ints (so ``uid % n``
    would stripe consecutive ids) and salted on strings; this mix gives
    hash-partitioning its "statistically equal shards" property while
    staying reproducible everywhere.
    """
    x &= 0xFFFFFFFFFFFFFFFF
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


@dataclass(slots=True)
class ShardAssignment:
    """The result of partitioning: who lives where.

    Attributes
    ----------
    num_shards:
        Requested shard count; ``shard_user_ids`` always has this many
        entries (some possibly empty — the execution layer must cope).
    strategy:
        The strategy that produced the assignment ("hash" / "grid").
    shard_user_ids:
        Per shard, the assigned user ids **in the dataset's user
        order** — the stable remapping the merge step keys on.
    shard_of:
        ``user_id -> shard`` lookup.
    """

    num_shards: int
    strategy: str
    shard_user_ids: List[List[int]]
    shard_of: Dict[int, int]

    def counts(self) -> List[int]:
        return [len(ids) for ids in self.shard_user_ids]

    def largest_skew(self) -> float:
        """Largest shard size over the ideal equal share (1.0 = even)."""
        total = sum(self.counts())
        if total == 0 or self.num_shards == 0:
            return 1.0
        ideal = total / self.num_shards
        return max(self.counts()) / ideal if ideal > 0 else 1.0


class UserPartitioner:
    """Splits a dataset's users into ``num_shards`` stable partitions.

    >>> assignment = UserPartitioner("grid", 4).assign(dataset)
    >>> assignment, shard_datasets = UserPartitioner("grid", 4).split(dataset)

    ``split`` returns per-shard :class:`~repro.model.dataset.Dataset`
    clones built with :meth:`Dataset.subset_users`, so every shard
    shares the parent's objects, relevance model and ``dmax`` — scores
    computed on a shard are bitwise identical to the full dataset's.
    """

    def __init__(self, strategy: str = "hash", num_shards: int = 1) -> None:
        strategy = str(strategy).lower()
        if strategy not in PARTITIONERS:
            raise ValueError(
                f"unknown partitioner {strategy!r}; expected one of {PARTITIONERS}"
            )
        if not isinstance(num_shards, int) or num_shards < 1:
            raise ValueError(f"num_shards must be an int >= 1, got {num_shards!r}")
        self.strategy = strategy
        self.num_shards = num_shards

    # ------------------------------------------------------------------
    def assign(self, dataset: Dataset) -> ShardAssignment:
        users = dataset.users
        if self.strategy == "hash":
            shard_of = {u.item_id: _mix64(u.item_id) % self.num_shards for u in users}
        else:
            shard_of = self._grid_assign(users)
        shard_user_ids: List[List[int]] = [[] for _ in range(self.num_shards)]
        for u in users:  # dataset order -> per-shard lists stay ordered
            shard_user_ids[shard_of[u.item_id]].append(u.item_id)
        return ShardAssignment(
            num_shards=self.num_shards,
            strategy=self.strategy,
            shard_user_ids=shard_user_ids,
            shard_of=shard_of,
        )

    def split(self, dataset: Dataset) -> Tuple[ShardAssignment, List[Dataset]]:
        """Assignment plus the per-shard dataset clones."""
        assignment = self.assign(dataset)
        return assignment, [
            dataset.subset_users(ids) for ids in assignment.shard_user_ids
        ]

    # ------------------------------------------------------------------
    def _grid_assign(self, users: Sequence[User]) -> Dict[int, int]:
        """Row-major grid cells dealt round-robin to shards.

        The grid is ``g x g`` with ``g = ceil(sqrt(num_shards))`` so
        there are at least as many cells as shards; dealing cells
        round-robin keeps every shard reachable even when all users
        collapse into one cell (they then share a single shard, the
        degenerate-but-correct outcome the edge-case tests pin).
        """
        if not users:
            return {}
        box = Rect.from_points(u.location for u in users)
        g = max(1, math.isqrt(self.num_shards - 1) + 1)
        width = box.max_x - box.min_x
        height = box.max_y - box.min_y
        shard_of: Dict[int, int] = {}
        for u in users:
            cx = 0 if width <= 0 else min(g - 1, int((u.location.x - box.min_x) / width * g))
            cy = 0 if height <= 0 else min(g - 1, int((u.location.y - box.min_y) / height * g))
            shard_of[u.item_id] = (cy * g + cx) % self.num_shards
        return shard_of


def partition_users(
    dataset: Dataset, num_shards: int, strategy: str = "hash"
) -> Tuple[ShardAssignment, List[Dataset]]:
    """One-call convenience: ``UserPartitioner(strategy, n).split(dataset)``."""
    return UserPartitioner(strategy, num_shards).split(dataset)
