"""Synthetic workload generation (stand-ins for Flickr and Yelp)."""

from .partition import ShardAssignment, UserPartitioner, partition_users
from .synthetic import SpaceConfig, flickr_like, yelp_like, zipf_term_sampler
from .users import UserWorkload, candidate_locations, generate_users, query_pool

__all__ = [
    "ShardAssignment",
    "SpaceConfig",
    "UserPartitioner",
    "UserWorkload",
    "candidate_locations",
    "flickr_like",
    "generate_users",
    "partition_users",
    "query_pool",
    "yelp_like",
    "zipf_term_sampler",
]
