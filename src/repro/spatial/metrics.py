"""Pluggable Lp (Minkowski) spatial metrics.

The paper's spatial proximity uses the Euclidean distance (Eq. 2), and
its related work (Wong et al., PVLDB 2011) extends the purely spatial
MaxBRkNN to arbitrary Lp norms.  This module carries that extension to
the spatial-textual setting: a :class:`LpMetric` computes point
distances and — crucially for the index bounds — *minimum and maximum
rectangle-to-rectangle distances* that stay sound for any ``p >= 1``
(including ``p = inf``).

Soundness of the rect bounds: for axis-aligned rectangles the per-axis
minimum gap ``dx, dy`` and maximum span ``Dx, Dy`` bound the per-axis
coordinate differences of *any* point pair, and every p-norm is
monotone in the absolute value of each component, so
``||(dx, dy)||_p <= ||(px - qx, py - qy)||_p <= ||(Dx, Dy)||_p``.
The property tests verify this on random rectangles for several p.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

from .geometry import Point, Rect

__all__ = ["LpMetric", "EUCLIDEAN", "MANHATTAN", "CHEBYSHEV"]


@dataclass(frozen=True)
class LpMetric:
    """Minkowski distance of order ``p`` (``p >= 1`` or ``math.inf``)."""

    p: Union[float, int] = 2.0

    def __post_init__(self) -> None:
        if self.p != math.inf and self.p < 1:
            raise ValueError("Lp metrics require p >= 1 (or math.inf)")

    # ------------------------------------------------------------------
    def _norm(self, dx: float, dy: float) -> float:
        dx, dy = abs(dx), abs(dy)
        if self.p == math.inf:
            return max(dx, dy)
        if self.p == 1:
            return dx + dy
        if self.p == 2:
            # sqrt(dx*dx + dy*dy) instead of math.hypot: *, + and sqrt
            # are all correctly rounded under IEEE-754, so the numpy
            # kernels reproduce this value bit for bit by writing the
            # same expression — math.hypot is correctly rounded too
            # (CPython >= 3.8) but C libm's hypot, which numpy calls,
            # is not, and the traversal backends must agree exactly.
            # Coordinates are dataspace-sized, so the classic
            # overflow/underflow caveat of the naive form cannot bite.
            return math.sqrt(dx * dx + dy * dy)
        return (dx**self.p + dy**self.p) ** (1.0 / self.p)

    # ------------------------------------------------------------------
    def distance(self, a: Point, b: Point) -> float:
        """Distance between two points."""
        return self._norm(a.x - b.x, a.y - b.y)

    def min_distance_point_rect(self, p: Point, r: Rect) -> float:
        dx = max(r.min_x - p.x, 0.0, p.x - r.max_x)
        dy = max(r.min_y - p.y, 0.0, p.y - r.max_y)
        return self._norm(dx, dy)

    def max_distance_point_rect(self, p: Point, r: Rect) -> float:
        dx = max(abs(p.x - r.min_x), abs(p.x - r.max_x))
        dy = max(abs(p.y - r.min_y), abs(p.y - r.max_y))
        return self._norm(dx, dy)

    def min_distance_rects(self, a: Rect, b: Rect) -> float:
        dx = max(a.min_x - b.max_x, 0.0, b.min_x - a.max_x)
        dy = max(a.min_y - b.max_y, 0.0, b.min_y - a.max_y)
        return self._norm(dx, dy)

    def max_distance_rects(self, a: Rect, b: Rect) -> float:
        dx = max(abs(a.max_x - b.min_x), abs(b.max_x - a.min_x))
        dy = max(abs(a.max_y - b.min_y), abs(b.max_y - a.min_y))
        return self._norm(dx, dy)

    def diameter(self, r: Rect) -> float:
        """Largest distance between two points inside ``r`` — the
        ``dmax`` normalizer for this metric."""
        return self._norm(r.width, r.height)

    def name(self) -> str:
        if self.p == math.inf:
            return "Linf"
        p = int(self.p) if float(self.p).is_integer() else self.p
        return f"L{p}"


#: Common instances.
EUCLIDEAN = LpMetric(2.0)
MANHATTAN = LpMetric(1.0)
CHEBYSHEV = LpMetric(math.inf)
