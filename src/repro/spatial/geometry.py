"""Planar geometry primitives used by every index in the library.

The paper works in a two-dimensional Euclidean dataspace.  Spatial
proximity between an object ``o`` and a user ``u`` is

    ``SS(o.l, u.l) = 1 - dist(o.l, u.l) / dmax``

where ``dmax`` normalizes distances into ``[0, 1]``.  Index nodes are
minimum bounding rectangles (MBRs); the bound estimations of Section 5.3
need the *minimum* and *maximum* Euclidean distance between two
rectangles, both of which are provided here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

__all__ = ["Point", "Rect", "point_distance", "EPSILON"]

#: Tolerance used when comparing floating point geometry results.
EPSILON = 1e-9


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the two-dimensional dataspace."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_rect(self) -> "Rect":
        """Degenerate rectangle covering exactly this point."""
        return Rect(self.x, self.y, self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


def point_distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points (module-level convenience)."""
    return a.distance_to(b)


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``.

    ``Rect`` is immutable; all combinators return new rectangles.  A
    degenerate rectangle (``min == max`` on both axes) represents a point
    and is how leaf entries are stored in the trees.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                f"degenerate rect bounds: ({self.min_x}, {self.min_y}, "
                f"{self.max_x}, {self.max_y})"
            )

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def margin(self) -> float:
        """Half-perimeter, used by R*-style split heuristics."""
        return self.width + self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    @property
    def diagonal(self) -> float:
        """Length of the rectangle diagonal.

        The diagonal of the dataset MBR is the library's ``dmax``
        normalizer: it upper-bounds the distance between any two points
        inside the rectangle, so ``SS`` stays within ``[0, 1]``.
        """
        return math.hypot(self.width, self.height)

    def is_point(self) -> bool:
        return self.width <= EPSILON and self.height <= EPSILON

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, p: Point) -> bool:
        return (
            self.min_x - EPSILON <= p.x <= self.max_x + EPSILON
            and self.min_y - EPSILON <= p.y <= self.max_y + EPSILON
        )

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.min_x - EPSILON <= other.min_x
            and self.min_y - EPSILON <= other.min_y
            and self.max_x + EPSILON >= other.max_x
            and self.max_y + EPSILON >= other.max_y
        )

    def intersects(self, other: "Rect") -> bool:
        # The same EPSILON tolerance as contains_point, so tree pruning
        # (which tests node MBRs with intersects) can never discard a
        # point that contains_point would report inside the query rect.
        return not (
            self.max_x < other.min_x - EPSILON
            or other.max_x < self.min_x - EPSILON
            or self.max_y < other.min_y - EPSILON
            or other.max_y < self.min_y - EPSILON
        )

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def union(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def extend_point(self, p: Point) -> "Rect":
        return Rect(
            min(self.min_x, p.x),
            min(self.min_y, p.y),
            max(self.max_x, p.x),
            max(self.max_y, p.y),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area growth needed to also cover ``other`` (R-tree heuristic)."""
        return self.union(other).area - self.area

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def min_distance_point(self, p: Point) -> float:
        """Minimum Euclidean distance from ``p`` to this rectangle.

        Zero when the point lies inside the rectangle.
        """
        dx = max(self.min_x - p.x, 0.0, p.x - self.max_x)
        dy = max(self.min_y - p.y, 0.0, p.y - self.max_y)
        return math.hypot(dx, dy)

    def max_distance_point(self, p: Point) -> float:
        """Maximum Euclidean distance from ``p`` to any point of the rect."""
        dx = max(abs(p.x - self.min_x), abs(p.x - self.max_x))
        dy = max(abs(p.y - self.min_y), abs(p.y - self.max_y))
        return math.hypot(dx, dy)

    def min_distance_rect(self, other: "Rect") -> float:
        """Minimum distance between any pair of points of the two rects.

        This is ``MinSS``'s distance input in Lemma 2: for every user
        located inside ``other`` and every object inside ``self`` the true
        point distance is at least this value... (it is a *lower* bound on
        the point distance, hence an *upper* bound on spatial proximity).
        """
        dx = max(self.min_x - other.max_x, 0.0, other.min_x - self.max_x)
        dy = max(self.min_y - other.max_y, 0.0, other.min_y - self.max_y)
        return math.hypot(dx, dy)

    def max_distance_rect(self, other: "Rect") -> float:
        """Maximum distance between any pair of points of the two rects.

        Used by the lower-bound estimation ``LB(E, us)``: no user in
        ``other`` can be farther than this from any object in ``self``.
        """
        dx = max(abs(self.max_x - other.min_x), abs(other.max_x - self.min_x))
        dy = max(abs(self.max_y - other.min_y), abs(other.max_y - self.min_y))
        return math.hypot(dx, dy)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_point(p: Point) -> "Rect":
        return Rect(p.x, p.y, p.x, p.y)

    @staticmethod
    def from_points(points: Iterable[Point]) -> "Rect":
        """Tightest rectangle covering ``points`` (must be non-empty)."""
        it = iter(points)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("Rect.from_points requires at least one point") from None
        min_x = max_x = first.x
        min_y = max_y = first.y
        for p in it:
            min_x = min(min_x, p.x)
            min_y = min(min_y, p.y)
            max_x = max(max_x, p.x)
            max_y = max(max_y, p.y)
        return Rect(min_x, min_y, max_x, max_y)

    @staticmethod
    def from_rects(rects: Sequence["Rect"]) -> "Rect":
        """Tightest rectangle covering ``rects`` (must be non-empty)."""
        if not rects:
            raise ValueError("Rect.from_rects requires at least one rect")
        return Rect(
            min(r.min_x for r in rects),
            min(r.min_y for r in rects),
            max(r.max_x for r in rects),
            max(r.max_y for r in rects),
        )
