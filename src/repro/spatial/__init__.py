"""Spatial substrate: geometry primitives and the R-tree."""

from .geometry import Point, Rect
from .metrics import CHEBYSHEV, EUCLIDEAN, LpMetric, MANHATTAN
from .rtree import RTree, RTreeEntry, RTreeNode, DEFAULT_FANOUT

__all__ = [
    "CHEBYSHEV",
    "DEFAULT_FANOUT",
    "EUCLIDEAN",
    "LpMetric",
    "MANHATTAN",
    "Point",
    "Rect",
    "RTree",
    "RTreeEntry",
    "RTreeNode",
]
