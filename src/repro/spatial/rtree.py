"""A classic R-tree over point data.

This is the spatial substrate under every index in the paper: the
IR-tree, MIR-tree, and MIUR-tree all share the same R-tree skeleton and
only differ in the textual augmentation attached to each node.  The tree
supports:

* **STR bulk loading** (Sort-Tile-Recursive), the standard way to build a
  packed tree from a static dataset — matching the paper's setting where
  the object set ``O`` is indexed once and queried many times;
* **dynamic insertion** with Guttman's quadratic split, so incremental
  updates behave like the original IR-tree ("the update costs of the
  MIR-tree are the same as the IR-tree");
* range and point queries used by the test suite as a correctness oracle.

Nodes carry opaque integer ``page_id``s handed out by a
:class:`repro.storage.pager.PageStore` so that simulated I/O accounting
(Section 8 of the paper) can charge one I/O per node visit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Generic, Iterator, List, Optional, Sequence, Tuple, TypeVar

from .geometry import Point, Rect

__all__ = ["RTreeEntry", "RTreeNode", "RTree", "DEFAULT_FANOUT"]

T = TypeVar("T")

#: Default maximum entries per node.  With a 4 kB page and ~40 byte
#: spatial entries a real system would pack ~100 entries; the paper's
#: trees are shallow and wide.  The test/bench datasets are small, so a
#: moderate fanout keeps the trees a few levels deep, which is what the
#: pruning logic needs to show its effect.
DEFAULT_FANOUT = 32


@dataclass(slots=True)
class RTreeEntry(Generic[T]):
    """Leaf payload: a point plus an opaque item (object id, user id...)."""

    point: Point
    item: T

    @property
    def rect(self) -> Rect:
        return Rect.from_point(self.point)


@dataclass(slots=True)
class RTreeNode(Generic[T]):
    """One R-tree node.

    ``children`` is populated for internal nodes, ``entries`` for leaves.
    ``page_id`` is assigned by the owning tree for I/O accounting.
    """

    is_leaf: bool
    rect: Rect
    children: List["RTreeNode[T]"] = field(default_factory=list)
    entries: List[RTreeEntry[T]] = field(default_factory=list)
    page_id: int = -1
    #: Number of leaf entries in the subtree (the MIUR-tree stores this
    #: as ``cp.num``; keeping it on the base node costs nothing).
    subtree_count: int = 0

    def recompute_rect(self) -> None:
        if self.is_leaf:
            self.rect = Rect.from_rects([e.rect for e in self.entries])
        else:
            self.rect = Rect.from_rects([c.rect for c in self.children])

    def recompute_count(self) -> None:
        if self.is_leaf:
            self.subtree_count = len(self.entries)
        else:
            self.subtree_count = sum(c.subtree_count for c in self.children)

    def fanout(self) -> int:
        return len(self.entries) if self.is_leaf else len(self.children)


class RTree(Generic[T]):
    """R-tree over point-located items.

    Parameters
    ----------
    fanout:
        Maximum number of entries/children per node.  The minimum fill is
        ``ceil(fanout * 0.4)`` as in Guttman's original heuristics.
    """

    def __init__(self, fanout: int = DEFAULT_FANOUT) -> None:
        if fanout < 2:
            raise ValueError("R-tree fanout must be >= 2")
        self.fanout = fanout
        self.min_fill = max(1, math.ceil(fanout * 0.4))
        self.root: Optional[RTreeNode[T]] = None
        self._size = 0
        self._next_page = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (0 for an empty tree)."""
        h, node = 0, self.root
        while node is not None:
            h += 1
            node = None if node.is_leaf else node.children[0]
        return h

    def iter_nodes(self) -> Iterator[RTreeNode[T]]:
        """Pre-order traversal of every node."""
        if self.root is None:
            return
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.children)

    def iter_entries(self) -> Iterator[RTreeEntry[T]]:
        for node in self.iter_nodes():
            if node.is_leaf:
                yield from node.entries

    def node_count(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    # ------------------------------------------------------------------
    # Bulk loading (Sort-Tile-Recursive)
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls, entries: Sequence[RTreeEntry[T]], fanout: int = DEFAULT_FANOUT
    ) -> "RTree[T]":
        """Build a packed tree with the STR algorithm.

        Entries are sorted by x, cut into vertical slabs of
        ``ceil(sqrt(n / fanout))`` runs, each slab sorted by y and packed
        into leaves of ``fanout`` entries; the process recurses upward.
        """
        tree = cls(fanout=fanout)
        if not entries:
            return tree
        leaves = tree._pack_leaves(list(entries))
        level: List[RTreeNode[T]] = leaves
        while len(level) > 1:
            level = tree._pack_internal(level)
        tree.root = level[0]
        tree._size = len(entries)
        tree._assign_page_ids()
        return tree

    def _pack_leaves(self, entries: List[RTreeEntry[T]]) -> List[RTreeNode[T]]:
        groups = _str_partition(entries, self.fanout, key=lambda e: e.point)
        leaves: List[RTreeNode[T]] = []
        for group in groups:
            node = RTreeNode[T](
                is_leaf=True,
                rect=Rect.from_rects([e.rect for e in group]),
                entries=group,
            )
            node.subtree_count = len(group)
            leaves.append(node)
        return leaves

    def _pack_internal(self, nodes: List[RTreeNode[T]]) -> List[RTreeNode[T]]:
        groups = _str_partition(nodes, self.fanout, key=lambda n: n.rect.center)
        parents: List[RTreeNode[T]] = []
        for group in groups:
            parent = RTreeNode[T](
                is_leaf=False,
                rect=Rect.from_rects([n.rect for n in group]),
                children=group,
            )
            parent.subtree_count = sum(n.subtree_count for n in group)
            parents.append(parent)
        return parents

    def _assign_page_ids(self) -> None:
        """Number nodes breadth-first so page ids are deterministic."""
        self._next_page = 0
        if self.root is None:
            return
        queue = [self.root]
        while queue:
            node = queue.pop(0)
            node.page_id = self._next_page
            self._next_page += 1
            if not node.is_leaf:
                queue.extend(node.children)

    # ------------------------------------------------------------------
    # Dynamic insertion (Guttman, quadratic split)
    # ------------------------------------------------------------------
    def insert(self, point: Point, item: T) -> None:
        entry = RTreeEntry(point=point, item=item)
        if self.root is None:
            self.root = RTreeNode[T](is_leaf=True, rect=entry.rect, entries=[entry])
            self.root.subtree_count = 1
            self.root.page_id = self._next_page
            self._next_page += 1
            self._size = 1
            return
        split = self._insert_into(self.root, entry)
        if split is not None:
            old_root = self.root
            self.root = RTreeNode[T](
                is_leaf=False,
                rect=old_root.rect.union(split.rect),
                children=[old_root, split],
            )
            self.root.subtree_count = old_root.subtree_count + split.subtree_count
            self.root.page_id = self._next_page
            self._next_page += 1
        self._size += 1

    def _insert_into(
        self, node: RTreeNode[T], entry: RTreeEntry[T]
    ) -> Optional[RTreeNode[T]]:
        """Insert recursively; return the sibling created by a split."""
        node.rect = node.rect.union(entry.rect)
        node.subtree_count += 1
        if node.is_leaf:
            node.entries.append(entry)
            if len(node.entries) > self.fanout:
                return self._split_leaf(node)
            return None
        child = _choose_subtree(node.children, entry.rect)
        split = self._insert_into(child, entry)
        if split is not None:
            split.page_id = self._next_page
            self._next_page += 1
            node.children.append(split)
            if len(node.children) > self.fanout:
                return self._split_internal(node)
        return None

    def _split_leaf(self, node: RTreeNode[T]) -> RTreeNode[T]:
        group_a, group_b = _quadratic_split(
            node.entries, self.min_fill, key=lambda e: e.rect
        )
        node.entries = group_a
        node.recompute_rect()
        node.recompute_count()
        sibling = RTreeNode[T](
            is_leaf=True,
            rect=Rect.from_rects([e.rect for e in group_b]),
            entries=group_b,
        )
        sibling.subtree_count = len(group_b)
        return sibling

    def _split_internal(self, node: RTreeNode[T]) -> RTreeNode[T]:
        group_a, group_b = _quadratic_split(
            node.children, self.min_fill, key=lambda c: c.rect
        )
        node.children = group_a
        node.recompute_rect()
        node.recompute_count()
        sibling = RTreeNode[T](
            is_leaf=False,
            rect=Rect.from_rects([c.rect for c in group_b]),
            children=group_b,
        )
        sibling.subtree_count = sum(c.subtree_count for c in group_b)
        return sibling

    # ------------------------------------------------------------------
    # Queries (correctness oracles for the fancier indexes)
    # ------------------------------------------------------------------
    def range_query(self, rect: Rect) -> List[RTreeEntry[T]]:
        """All entries whose point lies inside ``rect``."""
        out: List[RTreeEntry[T]] = []
        if self.root is None:
            return out
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.rect.intersects(rect):
                continue
            if node.is_leaf:
                out.extend(e for e in node.entries if rect.contains_point(e.point))
            else:
                stack.extend(node.children)
        return out

    def nearest(self, point: Point, n: int = 1) -> List[RTreeEntry[T]]:
        """``n`` nearest entries to ``point`` by best-first search."""
        import heapq

        if self.root is None or n <= 0:
            return []
        heap: List[Tuple[float, int, object]] = []
        counter = 0
        heapq.heappush(heap, (self.root.rect.min_distance_point(point), counter, self.root))
        out: List[RTreeEntry[T]] = []
        while heap and len(out) < n:
            _, __, item = heapq.heappop(heap)
            if isinstance(item, RTreeEntry):
                out.append(item)
            elif item.is_leaf:  # type: ignore[union-attr]
                for e in item.entries:  # type: ignore[union-attr]
                    counter += 1
                    heapq.heappush(heap, (e.point.distance_to(point), counter, e))
            else:
                for c in item.children:  # type: ignore[union-attr]
                    counter += 1
                    heapq.heappush(heap, (c.rect.min_distance_point(point), counter, c))
        return out

    # ------------------------------------------------------------------
    # Invariant checking (used heavily by tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if any structural invariant is broken."""
        if self.root is None:
            assert self._size == 0, "empty tree must have size 0"
            return
        total = _check_node(self.root, self.fanout, is_root=True)
        assert total == self._size, f"size mismatch: counted {total}, stored {self._size}"


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------

def _str_partition(items: List, fanout: int, key: Callable) -> List[List]:
    """Sort-Tile-Recursive partition of ``items`` into runs of ``fanout``."""
    n = len(items)
    if n <= fanout:
        return [list(items)]
    pages = math.ceil(n / fanout)
    slabs = math.ceil(math.sqrt(pages))
    per_slab = slabs * fanout
    by_x = sorted(items, key=lambda it: (key(it).x, key(it).y))
    groups: List[List] = []
    for i in range(0, n, per_slab):
        slab = sorted(by_x[i : i + per_slab], key=lambda it: (key(it).y, key(it).x))
        for j in range(0, len(slab), fanout):
            groups.append(slab[j : j + fanout])
    return groups


def _choose_subtree(children: List[RTreeNode], rect: Rect) -> RTreeNode:
    """Guttman's least-enlargement rule with area tiebreak."""
    best = children[0]
    best_growth = best.rect.enlargement(rect)
    for child in children[1:]:
        growth = child.rect.enlargement(rect)
        if growth < best_growth or (
            growth == best_growth and child.rect.area < best.rect.area
        ):
            best, best_growth = child, growth
    return best


def _quadratic_split(items: List, min_fill: int, key: Callable) -> Tuple[List, List]:
    """Guttman's quadratic split: seeds = most wasteful pair."""
    assert len(items) >= 2
    worst, seeds = -1.0, (0, 1)
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            waste = (
                key(items[i]).union(key(items[j])).area
                - key(items[i]).area
                - key(items[j]).area
            )
            if waste > worst:
                worst, seeds = waste, (i, j)
    i, j = seeds
    group_a, group_b = [items[i]], [items[j]]
    rect_a, rect_b = key(items[i]), key(items[j])
    rest = [it for idx, it in enumerate(items) if idx not in (i, j)]
    for it in rest:
        remaining = len(rest) - (len(group_a) + len(group_b) - 2)
        if len(group_a) + remaining <= min_fill:
            group_a.append(it)
            rect_a = rect_a.union(key(it))
            continue
        if len(group_b) + remaining <= min_fill:
            group_b.append(it)
            rect_b = rect_b.union(key(it))
            continue
        growth_a = rect_a.enlargement(key(it))
        growth_b = rect_b.enlargement(key(it))
        if growth_a < growth_b or (growth_a == growth_b and rect_a.area <= rect_b.area):
            group_a.append(it)
            rect_a = rect_a.union(key(it))
        else:
            group_b.append(it)
            rect_b = rect_b.union(key(it))
    return group_a, group_b


def _check_node(node: RTreeNode, fanout: int, is_root: bool) -> int:
    assert node.fanout() <= fanout, "node exceeds fanout"
    if not is_root:
        assert node.fanout() >= 1, "non-root node is empty"
    if node.is_leaf:
        for e in node.entries:
            assert node.rect.contains_point(e.point), "leaf MBR misses an entry"
        assert node.subtree_count == len(node.entries)
        return len(node.entries)
    total = 0
    for child in node.children:
        assert node.rect.contains_rect(child.rect), "parent MBR misses a child"
        total += _check_node(child, fanout, is_root=False)
    assert node.subtree_count == total, "subtree_count stale"
    return total
