"""A small, deterministic tokenizer for raw text descriptions.

The synthetic data generators emit term ids directly, but the public API
also accepts raw strings ("sushi, seafood") so the examples read like
the paper's Figure 1.  The tokenizer lowercases, strips punctuation and
drops a tiny built-in stopword list — enough for realistic examples
without pulling in an NLP dependency.
"""

from __future__ import annotations

import re
from typing import Iterable, List

__all__ = ["tokenize", "STOPWORDS"]

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: Minimal English stopword list — keeps example documents clean without
#: changing the behaviour of the synthetic workloads (which bypass it).
STOPWORDS = frozenset(
    """a an and are as at be by for from has he in is it its of on that the
    to was were will with this those these you your our we they i""".split()
)


def tokenize(text: str, drop_stopwords: bool = True) -> List[str]:
    """Split ``text`` into lowercase alphanumeric tokens.

    >>> tokenize("Sushi, Seafood & more!")
    ['sushi', 'seafood', 'more']
    """
    tokens = _TOKEN_RE.findall(text.lower())
    if drop_stopwords:
        tokens = [t for t in tokens if t not in STOPWORDS]
    return tokens


def tokenize_all(texts: Iterable[str], drop_stopwords: bool = True) -> List[List[str]]:
    """Tokenize a batch of texts."""
    return [tokenize(t, drop_stopwords=drop_stopwords) for t in texts]
