"""Vocabulary and collection statistics.

Every text relevance measure in the paper needs collection-level
statistics over the object set ``O``:

* **TF-IDF** needs document frequencies ``|{d in O : tf(t, d) > 0}|``;
* the **Language Model** needs collection term frequencies ``tf(t, C)``
  and the collection length ``|C|`` (Eq. 3, Jelinek–Mercer smoothing);
* all measures need, per term, the *maximum weight any document in the
  collection attains* — the ``Pmax`` normalizer of Eq. 4 that maps text
  scores into ``[0, 1]``.

The :class:`Vocabulary` interns term strings to dense integer ids so the
inverted files and keyword vectors can use plain ints everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["Vocabulary", "CollectionStats"]


class Vocabulary:
    """Bidirectional mapping between term strings and dense integer ids."""

    def __init__(self) -> None:
        self._term_to_id: Dict[str, int] = {}
        self._id_to_term: List[str] = []

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def add(self, term: str) -> int:
        """Intern ``term`` and return its id (existing id if present)."""
        tid = self._term_to_id.get(term)
        if tid is None:
            tid = len(self._id_to_term)
            self._term_to_id[term] = tid
            self._id_to_term.append(term)
        return tid

    def add_all(self, terms: Iterable[str]) -> List[int]:
        return [self.add(t) for t in terms]

    def id_of(self, term: str) -> int:
        """Id of ``term``; raises ``KeyError`` for unknown terms."""
        return self._term_to_id[term]

    def get(self, term: str) -> Optional[int]:
        """Id of ``term`` or ``None`` when not interned."""
        return self._term_to_id.get(term)

    def term_of(self, tid: int) -> str:
        return self._id_to_term[tid]

    def encode(self, terms: Iterable[str]) -> Dict[int, int]:
        """Term-frequency dict (``{term_id: count}``), interning new terms."""
        counts: Dict[int, int] = {}
        for term in terms:
            tid = self.add(term)
            counts[tid] = counts.get(tid, 0) + 1
        return counts

    def decode(self, term_ids: Iterable[int]) -> List[str]:
        return [self._id_to_term[t] for t in term_ids]


@dataclass
class CollectionStats:
    """Aggregate statistics over the object collection ``O``.

    Built once via :meth:`from_documents` and shared by every relevance
    measure, index, and bound computation.
    """

    #: Number of documents in the collection.
    num_docs: int = 0
    #: Total number of term occurrences (``|C|`` in Eq. 3).
    collection_length: int = 0
    #: Per-term collection frequency (``tf(t, C)``).
    collection_tf: Dict[int, int] = field(default_factory=dict)
    #: Per-term document frequency (for IDF).
    doc_frequency: Dict[int, int] = field(default_factory=dict)

    @classmethod
    def from_documents(cls, documents: Sequence[Mapping[int, int]]) -> "CollectionStats":
        """Aggregate from term-frequency dicts (one per document)."""
        stats = cls()
        stats.num_docs = len(documents)
        for doc in documents:
            for tid, tf in doc.items():
                if tf <= 0:
                    raise ValueError(f"non-positive term frequency for term {tid}")
                stats.collection_length += tf
                stats.collection_tf[tid] = stats.collection_tf.get(tid, 0) + tf
                stats.doc_frequency[tid] = stats.doc_frequency.get(tid, 0) + 1
        return stats

    def add_document(self, doc: Mapping[int, int]) -> None:
        """Incrementally account for one more document."""
        self.num_docs += 1
        for tid, tf in doc.items():
            self.collection_length += tf
            self.collection_tf[tid] = self.collection_tf.get(tid, 0) + tf
            self.doc_frequency[tid] = self.doc_frequency.get(tid, 0) + 1

    def tf_c(self, term_id: int) -> int:
        """Collection frequency ``tf(t, C)`` of a term (0 when absent)."""
        return self.collection_tf.get(term_id, 0)

    def df(self, term_id: int) -> int:
        """Document frequency of a term (0 when absent)."""
        return self.doc_frequency.get(term_id, 0)
