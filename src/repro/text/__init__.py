"""Textual substrate: tokenizer, vocabulary, relevance measures."""

from .relevance import (
    KeywordOverlapRelevance,
    LanguageModelRelevance,
    TextRelevance,
    TfIdfRelevance,
    make_relevance,
    MEASURES,
)
from .tokenizer import tokenize
from .vocabulary import CollectionStats, Vocabulary

__all__ = [
    "CollectionStats",
    "KeywordOverlapRelevance",
    "LanguageModelRelevance",
    "MEASURES",
    "TextRelevance",
    "TfIdfRelevance",
    "Vocabulary",
    "make_relevance",
    "tokenize",
]
