"""Text relevance measures: TF-IDF, Language Model, Keyword Overlap.

Section 3 of the paper defines three interchangeable text relevance
measures.  All three fit one template, which is what makes the min/max
augmented indexes (MIR-tree) measure-agnostic:

    ``TS(o.d, u.d) = sum_{t in u.d, tf(t, o.d) > 0} w(t, o.d) / Z(u.d)``

* ``w(t, d)`` is a non-negative, measure-specific *object-side* term
  weight, non-zero only when the term occurs in the document (this is
  the paper's relevance condition — "an object o is considered relevant
  to a user u iff o.d contains at least one term t in u.d" — and also
  what the posting lists store);
* ``Z(u.d)`` is a *user-side* normalizer that maps the sum into
  ``[0, 1]``: ``|u.d|`` for Keyword Overlap and
  ``Pmax = sum_{t in u.d} max_{o' in O} w(t, o'.d)`` (Eq. 4) for TF-IDF
  and the Language Model.

Measure definitions (``tf`` counts occurrences, ``C`` is the
concatenation of all object documents):

* **TF-IDF**:   ``w(t, d) = tf(t, d) * log(|O| / df(t))``
* **LM** (Jelinek–Mercer, Eq. 3):
  ``w(t, d) = (1 - lambda) * tf(t, d) / |d| + lambda * tf(t, C) / |C|``
* **KO**:       ``w(t, d) = 1``  and  ``Z(u.d) = |u.d|``

Per-term collection maxima ``max_{o'} w(t, o'.d)`` are precomputed once
(:meth:`TextRelevance.fit`) and reused by every query, index node and
bound computation.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional, Sequence

from .vocabulary import CollectionStats

__all__ = [
    "TextRelevance",
    "TfIdfRelevance",
    "LanguageModelRelevance",
    "KeywordOverlapRelevance",
    "make_relevance",
    "MEASURES",
]


class TextRelevance:
    """Base class for the pluggable text relevance measures.

    Subclasses implement :meth:`term_weight`.  After :meth:`fit` the
    instance also exposes :meth:`max_term_weight` (collection maxima)
    and :meth:`user_normalizer` (``Z(u.d)``).
    """

    #: Short identifier used in benchmarks and reports ("LM", "TF", "KO").
    name: str = "?"

    def __init__(self) -> None:
        self.stats: Optional[CollectionStats] = None
        self._max_weight: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, documents: Sequence[Mapping[int, int]]) -> "TextRelevance":
        """Compute collection statistics and per-term weight maxima."""
        self.stats = CollectionStats.from_documents(documents)
        self._max_weight = {}
        for doc in documents:
            doc_len = sum(doc.values())
            for tid, tf in doc.items():
                w = self._weight(tid, tf, doc_len)
                if w > self._max_weight.get(tid, 0.0):
                    self._max_weight[tid] = w
        return self

    def _require_fit(self) -> CollectionStats:
        if self.stats is None:
            raise RuntimeError(f"{type(self).__name__} must be fit() before scoring")
        return self.stats

    # ------------------------------------------------------------------
    # Weights
    # ------------------------------------------------------------------
    def _weight(self, term_id: int, tf: int, doc_len: int) -> float:
        """Measure-specific object-side weight; ``tf`` must be > 0."""
        raise NotImplementedError

    def term_weight(self, term_id: int, doc: Mapping[int, int]) -> float:
        """Weight of ``term_id`` in document ``doc`` (0 when absent)."""
        self._require_fit()
        tf = doc.get(term_id, 0)
        if tf <= 0:
            return 0.0
        return self._weight(term_id, tf, sum(doc.values()))

    def document_weights(self, doc: Mapping[int, int]) -> Dict[int, float]:
        """All term weights of a document — what the leaf posting lists store."""
        self._require_fit()
        doc_len = sum(doc.values())
        return {tid: self._weight(tid, tf, doc_len) for tid, tf in doc.items()}

    def max_term_weight(self, term_id: int) -> float:
        """``max_{o' in O} w(t, o'.d)`` — the per-term Pmax component."""
        return self._max_weight.get(term_id, 0.0)

    # ------------------------------------------------------------------
    # Normalizers and scores
    # ------------------------------------------------------------------
    def user_normalizer(self, user_terms: Iterable[int]) -> float:
        """``Z(u.d)``: Pmax of Eq. 4 (overridden by Keyword Overlap)."""
        return sum(self.max_term_weight(t) for t in set(user_terms))

    def score(self, doc: Mapping[int, int], user_terms: Iterable[int]) -> float:
        """``TS(o.d, u.d)`` in ``[0, 1]``.

        Returns 0 when the user has no scorable terms (empty keyword set
        or none of the keywords occur anywhere in the collection).
        """
        self._require_fit()
        terms = set(user_terms)
        z = self.user_normalizer(terms)
        if z <= 0.0:
            return 0.0
        total = 0.0
        doc_len = None
        for tid in terms:
            tf = doc.get(tid, 0)
            if tf > 0:
                if doc_len is None:
                    doc_len = sum(doc.values())
                total += self._weight(tid, tf, doc_len)
        # Pmax is a maximum over *collection* documents; a query-time
        # document (e.g. the augmented ox) can exceed it, so clamp to
        # keep the paper's "normalized within [0, 1]" contract.
        return min(1.0, total / z)

    def score_with_weights(
        self, weights: Mapping[int, float], user_terms: Iterable[int]
    ) -> float:
        """Score from precomputed term weights (used by the indexes)."""
        self._require_fit()
        terms = set(user_terms)
        z = self.user_normalizer(terms)
        if z <= 0.0:
            return 0.0
        return min(1.0, sum(weights.get(t, 0.0) for t in terms) / z)


class TfIdfRelevance(TextRelevance):
    """TF-IDF weighting: ``w(t, d) = tf(t, d) * log(|O| / df(t))``.

    The paper presents TF-IDF unnormalized but states all measures are
    normalized into [0, 1]; we use the same Pmax-style normalizer as the
    language model so the three measures are directly comparable.
    Terms occurring in *every* document get idf 0 — they cannot
    discriminate and contribute nothing, matching
    ``log(|O| / df) = log 1 = 0``.
    """

    name = "TF"

    def _weight(self, term_id: int, tf: int, doc_len: int) -> float:
        stats = self.stats
        assert stats is not None
        df = stats.df(term_id)
        if df <= 0:
            return 0.0
        return tf * math.log(stats.num_docs / df)


class LanguageModelRelevance(TextRelevance):
    """Jelinek–Mercer smoothed language model (Eq. 3 / Eq. 4).

    ``w(t, d) = (1 - lambda) * tf(t, d) / |d| + lambda * tf(t, C) / |C|``

    ``lambda`` trades the document model against the collection model;
    Zhai & Lafferty recommend small values (~0.1–0.3) for short,
    keyword-style queries, which is the paper's setting.
    """

    name = "LM"

    def __init__(self, smoothing: float = 0.2) -> None:
        super().__init__()
        if not 0.0 <= smoothing < 1.0:
            raise ValueError("LM smoothing lambda must be in [0, 1)")
        self.smoothing = smoothing

    def _weight(self, term_id: int, tf: int, doc_len: int) -> float:
        stats = self.stats
        assert stats is not None
        if doc_len <= 0 or stats.collection_length <= 0:
            return 0.0
        ml = tf / doc_len
        background = stats.tf_c(term_id) / stats.collection_length
        return (1.0 - self.smoothing) * ml + self.smoothing * background


class KeywordOverlapRelevance(TextRelevance):
    """Keyword Overlap: ``TS(o.d, u.d) = |u.d ∩ o.d| / |u.d|``.

    The object-side weight of every present term is 1 and the user-side
    normalizer is the user's keyword count, so many objects tie — the
    paper observes this forces the top-k search to inspect more objects
    than the graded measures.
    """

    name = "KO"

    def _weight(self, term_id: int, tf: int, doc_len: int) -> float:
        return 1.0

    def max_term_weight(self, term_id: int) -> float:
        # Every present term weighs exactly 1; a term absent from the
        # collection can never be matched so its maximum is 0.
        return 1.0 if self._max_weight.get(term_id) else 0.0

    def user_normalizer(self, user_terms: Iterable[int]) -> float:
        return float(len(set(user_terms)))


#: Registry used by the CLI, benchmarks and tests.
MEASURES = {
    "LM": LanguageModelRelevance,
    "TF": TfIdfRelevance,
    "KO": KeywordOverlapRelevance,
}


def make_relevance(name: str, **kwargs) -> TextRelevance:
    """Instantiate a relevance measure by short name ("LM", "TF", "KO")."""
    try:
        cls = MEASURES[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown relevance measure {name!r}; expected one of {sorted(MEASURES)}"
        ) from None
    return cls(**kwargs)
