"""Contract-aware static analysis for the repro codebase.

``repro lint`` runs seven repo-specific AST checkers — Stage I/O
contract drift, fork-pool pickle safety, bitwise-identity kernel
discipline, async event-loop blocking, supervised pool-dispatch
discipline, shm payload hygiene, and the socket-transport pickle
funnel — without importing the target files.  See
:mod:`repro.analysis.engine` for the engine and
:mod:`repro.analysis.checkers` for the rule families.
"""

from .checkers import (
    ALL_CHECKERS,
    AsyncBlockingChecker,
    FaultToleranceChecker,
    KernelIdentityChecker,
    PoolBoundaryChecker,
    ShmPayloadChecker,
    StageContractChecker,
    TransportChecker,
    checkers_for,
)
from .engine import (
    Checker,
    Finding,
    LintReport,
    LintUsageError,
    ModuleInfo,
    exit_code,
    format_json,
    format_text,
    iter_python_files,
    run_paths,
)

__all__ = [
    "ALL_CHECKERS",
    "AsyncBlockingChecker",
    "Checker",
    "FaultToleranceChecker",
    "Finding",
    "KernelIdentityChecker",
    "LintReport",
    "LintUsageError",
    "ModuleInfo",
    "PoolBoundaryChecker",
    "ShmPayloadChecker",
    "StageContractChecker",
    "TransportChecker",
    "checkers_for",
    "exit_code",
    "format_json",
    "format_text",
    "iter_python_files",
    "run_paths",
]
