"""AST-walking static analysis engine for repo-specific contracts.

The codebase rests on conventions that ordinary linters cannot see:
:class:`~repro.core.pipeline.Stage` declares the context slots it reads
and writes, the fork-pool boundary silently breaks when unpicklable
state sneaks into payloads, the bitwise-identity kernels in
:mod:`repro.core.kernels` ban re-associating reductions, and blocking
calls inside ``async def`` bodies stall the serving event loop.  Each of
those one-off code-review rules lives here as a :class:`Checker` the
``repro lint`` command runs mechanically.

Design:

* a :class:`Finding` is (rule id, message, file, line, severity) —
  rule ids are stable codes (``SC101``, ``PB201``, ...) grouped into
  the four checker families;
* a :class:`Checker` parses nothing itself — it receives a
  :class:`ModuleInfo` (source + parsed AST) and yields findings, so
  target files are **never imported** (fixtures with deliberate bugs
  and files with missing optional deps lint fine);
* suppressions are explicit: ``# repro: noqa[SC101]`` on the offending
  line silences that code (or a family name, or everything with a bare
  ``# repro: noqa``) — the convention is that every suppression carries
  a comment explaining *why* the violation is intended;
* per-file caching: results memoize on the file's content hash (plus
  the rule selection), in-process always and optionally on disk, so a
  lint of an unchanged tree re-parses nothing.

Exit-code contract (:func:`exit_code`): ``0`` clean, ``1`` findings
(errors always; warnings only under ``--strict``), ``2`` usage errors
(nonexistent path, no python files, unknown rule).
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "ModuleInfo",
    "Checker",
    "LintReport",
    "LintUsageError",
    "run_paths",
    "exit_code",
    "format_text",
    "format_json",
    "iter_python_files",
]

#: Severities, in increasing order of concern.
SEVERITIES = ("warning", "error")

#: ``# repro: noqa`` / ``# repro: noqa[SC101, pool-boundary]``
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_\-, ]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source line."""

    rule: str                 # stable code, e.g. "SC101"
    family: str               # checker family, e.g. "stage-contract"
    message: str
    file: str                 # path as given to the engine
    line: int                 # 1-based
    severity: str = "error"   # "error" | "warning"

    def snapshot(self) -> dict:
        return {
            "rule": self.rule,
            "family": self.family,
            "severity": self.severity,
            "file": self.file,
            "line": self.line,
            "message": self.message,
        }


class ModuleInfo:
    """One target file: source text plus its parsed AST.

    Parsing happens once, here — checkers share the tree.  A file that
    does not parse produces the ``E000`` finding instead of a crash
    (``tree`` is ``None`` then; checkers must tolerate it).
    """

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree: Optional[ast.AST] = None
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.syntax_error = exc

    def line_text(self, line: int) -> str:
        """The 1-based source line (empty for out-of-range lines)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


class Checker:
    """Base class: one rule family over one module at a time."""

    #: Family name used by ``--rule`` selection and ``noqa[<family>]``.
    name: str = "checker"
    description: str = ""
    #: The stable rule codes this family can emit (for --list-rules).
    codes: Tuple[Tuple[str, str], ...] = ()

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def cache_key(self) -> str:
        """Cache identity: configurable checkers must extend this so a
        reconfigured instance never hits another configuration's cache."""
        return self.name

    # Helper so concrete checkers emit uniformly tagged findings.
    def finding(
        self, rule: str, message: str, module: ModuleInfo, line: int,
        severity: str = "error",
    ) -> Finding:
        return Finding(
            rule=rule, family=self.name, message=message,
            file=module.path, line=line, severity=severity,
        )


class LintUsageError(Exception):
    """Bad invocation (exit code 2): unknown rule, no files, ..."""


@dataclass
class LintReport:
    """Everything one engine run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    cache_hits: int = 0

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    def snapshot(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "findings": [f.snapshot() for f in self.findings],
        }


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------

def suppressed_rules(line_text: str) -> Optional[frozenset]:
    """The rules a source line's ``# repro: noqa`` comment silences.

    Returns ``None`` when the line has no noqa comment, an **empty**
    frozenset for a bare ``# repro: noqa`` (silence everything), and
    the named codes/families otherwise.
    """
    m = _NOQA_RE.search(line_text)
    if m is None:
        return None
    if m.group(1) is None:
        return frozenset()
    return frozenset(
        token.strip() for token in m.group(1).split(",") if token.strip()
    )


def _is_suppressed(finding: Finding, lines: Sequence[str]) -> bool:
    text = lines[finding.line - 1] if 1 <= finding.line <= len(lines) else ""
    rules = suppressed_rules(text)
    if rules is None:
        return False
    if not rules:  # bare noqa silences the whole line
        return True
    return finding.rule in rules or finding.family in rules


# ----------------------------------------------------------------------
# Per-file caching
# ----------------------------------------------------------------------

#: In-process cache: (abspath, content sha1, rules key) -> raw findings.
#: Keyed on content, not mtime, so edit-and-revert hits too.  The test
#: suite lints the same tree from many tests; this makes that ~free.
_MEMO: Dict[Tuple[str, str, str], List[Finding]] = {}


class _DiskCache:
    """Optional JSON sidecar cache (``repro lint --cache FILE``)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._entries: Dict[str, dict] = {}
        self.dirty = False
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
            if isinstance(data, dict):
                self._entries = data.get("files", {})
        except (OSError, ValueError):
            self._entries = {}

    def lookup(self, key: Tuple[str, str, str]) -> Optional[List[Finding]]:
        entry = self._entries.get(key[0])
        if entry is None or entry.get("sha") != key[1] or entry.get("rules") != key[2]:
            return None
        try:
            return [Finding(**raw) for raw in entry["findings"]]
        except (KeyError, TypeError):
            return None

    def store(self, key: Tuple[str, str, str], findings: List[Finding]) -> None:
        self._entries[key[0]] = {
            "sha": key[1],
            "rules": key[2],
            "findings": [f.snapshot() for f in findings],
        }
        self.dirty = True

    def flush(self) -> None:
        if not self.dirty:
            return
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump({"version": 1, "files": self._entries}, fh)
        os.replace(tmp, self.path)
        self.dirty = False


# ----------------------------------------------------------------------
# File discovery + the engine proper
# ----------------------------------------------------------------------

def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises :class:`LintUsageError` for a nonexistent path or when the
    expansion finds no python files at all — ``repro lint typo/`` must
    fail loudly, not report a clean empty run.
    """
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if not d.startswith(".") and d != "__pycache__"
                )
                out.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames)
                    if name.endswith(".py")
                )
        else:
            raise LintUsageError(f"path does not exist: {path!r}")
    files = sorted(dict.fromkeys(out))
    if not files:
        raise LintUsageError(
            f"no python files found under {', '.join(repr(p) for p in paths)}"
        )
    return files


def _rules_key(checkers: Sequence[Checker]) -> str:
    return ",".join(sorted(c.cache_key() for c in checkers))


def _check_one(
    path: str,
    source: str,
    checkers: Sequence[Checker],
    rules_key: str,
    disk: Optional[_DiskCache],
    report: LintReport,
) -> List[Finding]:
    """Raw (pre-suppression) findings for one file, cached on content."""
    sha = hashlib.sha1(source.encode("utf-8")).hexdigest()
    key = (os.path.abspath(path), sha, rules_key)
    cached = _MEMO.get(key)
    if cached is None and disk is not None:
        cached = disk.lookup(key)
    if cached is not None:
        report.cache_hits += 1
        # Cached findings carry their original path string; re-home
        # them so reports stay consistent with how *this* run named it.
        return [
            f if f.file == path else Finding(**(f.snapshot() | {"file": path}))
            for f in cached
        ]
    module = ModuleInfo(path, source)
    raw: List[Finding] = []
    if module.syntax_error is not None:
        err = module.syntax_error
        raw.append(Finding(
            rule="E000", family="engine",
            message=f"syntax error: {err.msg}",
            file=path, line=err.lineno or 1, severity="error",
        ))
    else:
        for checker in checkers:
            raw.extend(checker.check(module))
    raw.sort(key=lambda f: (f.line, f.rule))
    _MEMO[key] = raw
    if disk is not None:
        disk.store(key, raw)
    return raw


def run_paths(
    paths: Sequence[str],
    checkers: Sequence[Checker],
    cache_file: Optional[str] = None,
) -> LintReport:
    """Lint every python file under ``paths`` with ``checkers``."""
    files = iter_python_files(paths)
    disk = _DiskCache(cache_file) if cache_file else None
    report = LintReport()
    rules_key = _rules_key(checkers)
    for path in files:
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            raise LintUsageError(f"cannot read {path!r}: {exc}") from exc
        raw = _check_one(path, source, checkers, rules_key, disk, report)
        report.files_checked += 1
        if not raw:
            continue
        lines = source.splitlines()
        for finding in raw:
            if _is_suppressed(finding, lines):
                report.suppressed += 1
            else:
                report.findings.append(finding)
    if disk is not None:
        disk.flush()
    report.findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return report


def exit_code(report: LintReport, strict: bool = False) -> int:
    """The exit-code contract: 0 clean, 1 findings (see module doc)."""
    if report.errors():
        return 1
    if strict and report.findings:
        return 1
    return 0


# ----------------------------------------------------------------------
# Output formats
# ----------------------------------------------------------------------

def format_text(report: LintReport) -> str:
    lines = [
        f"{f.file}:{f.line}: {f.rule} [{f.severity}] {f.message}"
        for f in report.findings
    ]
    tail = (
        f"{len(report.findings)} finding(s) "
        f"({len(report.errors())} error(s)) in {report.files_checked} file(s)"
    )
    if report.suppressed:
        tail += f", {report.suppressed} suppressed"
    lines.append(tail)
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    return json.dumps(report.snapshot(), indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# Shared AST helpers for the concrete checkers
# ----------------------------------------------------------------------

def call_name(node: ast.expr) -> str:
    """Dotted name of a call target: ``np.add.reduceat`` -> that string.

    Non-name components (subscripts, calls) render as ``?`` so callers
    can still match on the trailing attribute.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return f"{call_name(node.value)}.{node.attr}"
    return "?"


def const_str(node: ast.expr) -> Optional[str]:
    """The value of a string-constant expression, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def walk_scope(node: ast.AST, *, skip_nested: bool = False) -> Iterable[ast.AST]:
    """Yield ``node``'s body nodes, optionally not descending into
    nested function/class definitions (their bodies are other scopes)."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if skip_nested and isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(child))
