"""``repro lint``: run the contract checkers from the command line.

Exit codes: ``0`` clean, ``1`` findings (errors always; warnings too
under ``--strict``), ``2`` usage errors (nonexistent path, no python
files, unknown ``--rule``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .checkers import ALL_CHECKERS, checkers_for
from .engine import (
    LintUsageError,
    exit_code,
    format_json,
    format_text,
    run_paths,
)

__all__ = ["add_lint_arguments", "run_lint", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to a (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit 1 on warnings too, not only errors",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        dest="output_format", help="report format (default: text)",
    )
    parser.add_argument(
        "--rule", action="append", default=[], metavar="FAMILY",
        help="run only this checker family (repeatable; family name "
             "like 'stage-contract' or a code like 'SC101')",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list every family and rule code, then exit",
    )
    parser.add_argument(
        "--cache", metavar="FILE", default=None,
        help="JSON result cache keyed on file content hashes",
    )


def _list_rules() -> str:
    lines: List[str] = []
    for cls in ALL_CHECKERS:
        lines.append(f"{cls.name}: {cls.description}")
        for code, summary in cls.codes:
            lines.append(f"  {code}  {summary}")
    return "\n".join(lines)


def run_lint(ns: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if ns.list_rules:
        print(_list_rules())
        return 0
    try:
        checkers = checkers_for(ns.rule)
        report = run_paths(ns.paths, checkers, cache_file=ns.cache)
    except LintUsageError as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2
    if ns.output_format == "json":
        print(format_json(report))
    else:
        print(format_text(report))
    return exit_code(report, strict=ns.strict)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="contract-aware static analysis for the repro codebase",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
