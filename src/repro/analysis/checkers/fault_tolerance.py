"""``fault-tolerance``: pool scatter rounds must ride the supervisor.

A bare ``multiprocessing`` dispatch has no worker-liveness check, no
deadline and no retry: a worker that dies mid-task loses the task
forever and the round's ``AsyncResult.get()`` simply never returns —
the exact wedge the supervised
:class:`~repro.serve.pool.PersistentWorkerPool` exists to remove.  The
sanctioned path is ``dispatch()`` / ``collect()`` / ``run_supervised()``
(deadline + retry + typed failures); this checker makes that discipline
machine-checked, like the Stage contract.

Flagged (outside ``PersistentWorkerPool`` itself, which implements the
supervisor and may touch the raw pool):

* any call of ``run_shard_tasks_async`` — the legacy unsupervised
  escape hatch, whatever the receiver;
* async ``multiprocessing`` dispatches (``map_async``, ``apply_async``,
  ``starmap_async``, ``imap``, ``imap_unordered``) on a pool-like
  receiver — each returns a result handle whose ``get()``/iteration
  can hang forever on worker death.

Synchronous ``pool.map`` on an *ephemeral* fork pool (the per-round
``plan.workers > 1`` path, torn down with the round) is out of scope:
its blast radius is one call, not a serving runtime.

Rules
-----
* ``FT501`` bare pool dispatch bypassing the deadline/retry supervisor.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Tuple

from ..engine import Checker, Finding, ModuleInfo, call_name

__all__ = ["FaultToleranceChecker"]

#: The unsupervised legacy API: flagged on any receiver.
_RAW_DISPATCH = frozenset({"run_shard_tasks_async"})

#: multiprocessing async-dispatch methods returning result handles that
#: hang forever if a worker dies (flagged on pool-like receivers).
_ASYNC_POOL_METHODS = frozenset(
    {"map_async", "apply_async", "starmap_async", "imap", "imap_unordered"}
)

#: Receiver names that mark the call target as a worker pool.
_POOLISH_RE = re.compile(r"pool|worker", re.IGNORECASE)

#: Classes allowed to touch the raw pool: the supervisor itself.
_SUPERVISOR_CLASSES = frozenset({"PersistentWorkerPool"})


class FaultToleranceChecker(Checker):
    """Flag pool dispatches that bypass the supervision wrapper."""

    name = "fault-tolerance"
    description = (
        "pool scatter dispatches must flow through the supervised "
        "dispatch()/collect()/run_supervised() wrapper (deadline + "
        "retry), never bare multiprocessing async results"
    )
    codes = (
        ("FT501", "bare pool dispatch bypasses the deadline/retry supervisor"),
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        assert module.tree is not None
        for node, supervised in _walk_with_class_context(module.tree, False):
            if supervised or not isinstance(node, ast.Call):
                continue
            target = node.func
            if not isinstance(target, ast.Attribute):
                continue
            tail = target.attr
            if tail in _RAW_DISPATCH:
                yield self.finding(
                    "FT501",
                    f"{call_name(target)}() is the unsupervised dispatch: "
                    f"a dead worker wedges its result forever; use "
                    f"run_supervised() (or dispatch()+collect()) so the "
                    f"deadline/retry ladder applies",
                    module, node.lineno,
                )
            elif tail in _ASYNC_POOL_METHODS and _POOLISH_RE.search(
                call_name(target.value)
            ):
                yield self.finding(
                    "FT501",
                    f"bare {call_name(target)}() returns a result handle "
                    f"with no liveness check or deadline — worker death "
                    f"hangs it forever; route the round through "
                    f"PersistentWorkerPool.run_supervised()",
                    module, node.lineno,
                )


def _walk_with_class_context(
    root: ast.AST, supervised: bool
) -> Iterator[Tuple[ast.AST, bool]]:
    """Yield ``(node, inside_supervisor_class)`` over the whole tree."""
    for child in ast.iter_child_nodes(root):
        child_supervised = supervised or (
            isinstance(child, ast.ClassDef) and child.name in _SUPERVISOR_CLASSES
        )
        yield child, child_supervised
        yield from _walk_with_class_context(child, child_supervised)
