"""``shm-payload``: shared-memory state must flow by name, not by pickle.

The zero-copy storage tier (:mod:`repro.storage.shm`) has exactly two
transport disciplines, and both are easy to violate silently:

* shm-backed buffers — arena column views and the kernel array bundles
  that live on them (``DatasetArrays``/``TreeArrays``/
  ``CandidatePoolArrays``) — cross process boundaries as an
  :class:`~repro.core.payload.ArenaRef` *name*, never as bytes.
  Pickling one re-ships through the worker pipe the exact state the
  arena exists to share; the array bundles raise ``TypeError`` at
  runtime, but a raw arena view pickles "successfully" into a full
  copy, so only lint catches the quiet version of the bug;
* every ``multiprocessing.shared_memory.SharedMemory`` handle is owned
  by :class:`~repro.storage.shm.ShmArena`, whose single construction
  site carries the tier's lifecycle guarantees (refcounted attach,
  idempotent unlink, the resource-tracker register/unregister balance,
  finalizer sweep).  A raw ``SharedMemory(...)`` anywhere else escapes
  all of them and is how ``/dev/shm`` leaks come back.

Rules
-----
* ``SM601`` a shm-backed value (tainted name or inline construction)
  flows into ``pickle.dumps``/``pickle.dump``;
* ``SM602`` raw ``SharedMemory(...)`` construction outside
  ``class ShmArena``.

Like the other families, the taint analysis is single-scope over
literal assignments: it proves presence of a violation, never absence.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from ..engine import Checker, Finding, ModuleInfo, call_name, walk_scope

__all__ = ["ShmPayloadChecker", "SHM_BACKED_ORIGINS"]

#: Call-name components whose results are shared-memory backed: the
#: arena itself and its view factories, plus the kernel array bundles
#: the engine publishes into it (and their lazy factories).
SHM_BACKED_ORIGINS = frozenset({
    "ShmArena", "add_array", "share_arrays",
    "DatasetArrays", "TreeArrays", "CandidatePoolArrays",
    "arrays_for", "tree_arrays_for",
})

#: ``pickle`` entry points whose first argument is serialized.
_PICKLE_CALLS = frozenset({"pickle.dumps", "pickle.dump"})


def _shm_origin(dotted: str) -> str:
    """The shm-backed component of a dotted call name, or ``""``."""
    for part in dotted.split("."):
        if part in SHM_BACKED_ORIGINS:
            return part
    return ""


class ShmPayloadChecker(Checker):
    """Flag pickled shm state and out-of-arena SharedMemory handles."""

    name = "shm-payload"
    description = (
        "shm-backed arrays ship as ArenaRef names, never pickles; raw "
        "SharedMemory construction is ShmArena's alone"
    )
    codes = (
        ("SM601", "shm-backed value pickled instead of shipped by name"),
        ("SM602", "raw SharedMemory(...) outside ShmArena"),
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        assert module.tree is not None
        exempt = self._arena_class_calls(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_raw_shared_memory(node, module, exempt)
        for scope in ast.walk(module.tree):
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(scope, module)
        yield from self._check_scope(module.tree, module)

    # ------------------------------------------------------------------
    # SM602: SharedMemory construction is ShmArena's single site
    # ------------------------------------------------------------------
    @staticmethod
    def _arena_class_calls(tree: ast.AST) -> Set[int]:
        """ids of every Call node inside a ``class ShmArena`` body."""
        exempt: Set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == "ShmArena":
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Call):
                        exempt.add(id(sub))
        return exempt

    def _check_raw_shared_memory(
        self, node: ast.Call, module: ModuleInfo, exempt: Set[int]
    ) -> Iterator[Finding]:
        if call_name(node.func).rsplit(".", 1)[-1] != "SharedMemory":
            return
        if id(node) in exempt:
            return
        yield self.finding(
            "SM602",
            "raw SharedMemory(...) outside ShmArena: construct segments "
            "through the arena so refcounting, unlink idempotence and the "
            "resource-tracker balance all hold (ShmArena._open is the one "
            "sanctioned site)",
            module, node.lineno,
        )

    # ------------------------------------------------------------------
    # SM601: pickling shm-backed values
    # ------------------------------------------------------------------
    def _check_scope(self, scope: ast.AST, module: ModuleInfo) -> Iterator[Finding]:
        tainted = self._tainted_names(scope)
        for node in walk_scope(scope, skip_nested=True):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node.func) not in _PICKLE_CALLS or not node.args:
                continue
            target = node.args[0]
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name) and sub.id in tainted:
                    yield self.finding(
                        "SM601",
                        f"{sub.id!r} (a {tainted[sub.id]}) is pickled: "
                        f"shm-backed state crosses processes as an "
                        f"ArenaRef name, never as bytes — pickling it "
                        f"re-ships what the arena exists to share",
                        module, sub.lineno,
                    )
                elif isinstance(sub, ast.Call):
                    origin = _shm_origin(call_name(sub.func))
                    if origin:
                        yield self.finding(
                            "SM601",
                            f"{call_name(sub.func)}(...) pickled inline: "
                            f"{origin} results are shm-backed; ship the "
                            f"arena name and re-attach on the far side",
                            module, sub.lineno,
                        )

    @staticmethod
    def _tainted_names(scope: ast.AST) -> Dict[str, str]:
        """Names assigned from shm-backed constructors in this scope."""
        tainted: Dict[str, str] = {}
        for node in walk_scope(scope, skip_nested=True):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            origin = _shm_origin(call_name(node.value.func))
            if not origin:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    tainted[target.id] = origin
        return tainted
