"""``stage-contract``: Stage I/O declarations must match actual ctx use.

Every :class:`~repro.core.pipeline.Stage` declares the
:class:`~repro.core.pipeline.FlushContext` slots it touches:

* ``inputs``   — slots the stage requires before it runs (the executor
  validates their presence);
* ``outputs``  — slots the stage promises to produce (validated after);
* ``scratch``  — intra-stage slots ``split`` hands to ``merge`` and the
  executor drops when the stage finishes;
* ``optional`` — slots read with ``ctx.get(...)`` that may legitimately
  be absent (an executor hint, not a pipeline product).

The streaming/standing-query roadmap item plans to dispatch deltas on
these declarations ("re-run exactly the stages whose inputs a delta
touched"), which only works if they are *accurate*.  This checker makes
them machine-checked: it statically resolves every ``ctx[...]``
subscript, ``ctx.require(...)``, ``ctx.get(...)`` and
``ctx.setdefault(...)`` inside ``run_central``/``split``/``merge``
bodies and diffs them against the declarations.

Rules
-----
* ``SC101`` undeclared required read — ``ctx["x"]``/``ctx.require("x")``
  of a slot not in ``inputs``/``scratch`` (or an output the stage
  itself wrote);
* ``SC102`` undeclared write — ``ctx["x"] = ...``/``setdefault`` of a
  slot not in ``outputs``/``scratch``;
* ``SC103`` dead input — declared but never read;
* ``SC104`` dead output — declared but never written;
* ``SC105`` dynamic context key (warning) — a non-literal slot name
  defeats the whole contract;
* ``SC106`` dead scratch/optional declaration.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..engine import Checker, Finding, ModuleInfo, const_str

__all__ = ["StageContractChecker", "STAGE_METHODS"]

#: Methods whose bodies constitute the stage's contract surface.
STAGE_METHODS = ("run_central", "split", "merge")

#: Class attributes holding declared slot tuples.
_DECLS = ("inputs", "outputs", "scratch", "optional")


def _base_names(cls: ast.ClassDef) -> List[str]:
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


@dataclass
class _Access:
    """One resolved ctx access inside a stage method."""

    slot: str
    line: int
    kind: str  # "read" | "optional_read" | "write"


@dataclass
class _StageInfo:
    node: ast.ClassDef
    #: Effective declarations (own, over inherited-in-module).
    decls: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Declarations this class states itself — dead-declaration rules
    #: apply only to these (the base class exercises its own).
    own: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    decl_lines: Dict[str, int] = field(default_factory=dict)
    accesses: List[_Access] = field(default_factory=list)
    dynamic_lines: List[int] = field(default_factory=list)


def _tuple_of_strings(node: ast.expr) -> Optional[Tuple[str, ...]]:
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    out = []
    for elt in node.elts:
        value = const_str(elt)
        if value is None:
            return None
        out.append(value)
    return tuple(out)


class _CtxVisitor(ast.NodeVisitor):
    """Collect ctx accesses on one parameter name inside one method."""

    def __init__(self, ctx_name: str, info: _StageInfo) -> None:
        self.ctx_name = ctx_name
        self.info = info

    def _is_ctx(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id == self.ctx_name

    def _record(self, key_node: ast.expr, line: int, kind: str) -> None:
        slot = const_str(key_node)
        if slot is None:
            self.info.dynamic_lines.append(line)
        else:
            self.info.accesses.append(_Access(slot, line, kind))

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._is_ctx(node.value):
            kind = "write" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read"
            self._record(node.slice, node.lineno, kind)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and self._is_ctx(func.value)
            and node.args
        ):
            if func.attr == "require":
                self._record(node.args[0], node.lineno, "read")
            elif func.attr == "get":
                self._record(node.args[0], node.lineno, "optional_read")
            elif func.attr == "setdefault":
                self._record(node.args[0], node.lineno, "write")
            elif func.attr == "pop":
                self._record(node.args[0], node.lineno, "write")
        self.generic_visit(node)


def _collect_stage(cls: ast.ClassDef, stages: Dict[str, _StageInfo]) -> _StageInfo:
    """Declarations + ctx accesses of one Stage subclass.

    Declarations are inherited from base stages defined in the same
    module (e.g. a fixture subclassing another fixture); accesses are
    the class's own.
    """
    info = _StageInfo(node=cls)
    for base in _base_names(cls):
        parent = stages.get(base)
        if parent is not None:
            info.decls.update(parent.decls)
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name) and target.id in _DECLS:
                decl = _tuple_of_strings(stmt.value)
                if decl is not None:
                    info.decls[target.id] = decl
                    info.own[target.id] = decl
                    info.decl_lines[target.id] = stmt.lineno
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name) and stmt.target.id in _DECLS:
                decl = _tuple_of_strings(stmt.value)
                if decl is not None:
                    info.decls[stmt.target.id] = decl
                    info.own[stmt.target.id] = decl
                    info.decl_lines[stmt.target.id] = stmt.lineno
        elif isinstance(stmt, ast.FunctionDef) and stmt.name in STAGE_METHODS:
            params = stmt.args.posonlyargs + stmt.args.args
            if len(params) < 2:
                continue  # no ctx parameter (self-only signature)
            _CtxVisitor(params[1].arg, info).visit(stmt)
    return info


class StageContractChecker(Checker):
    """Diff Stage input/output declarations against actual ctx use."""

    name = "stage-contract"
    description = (
        "Stage subclasses must declare every FlushContext slot their "
        "run_central/split/merge bodies read or write"
    )
    codes = (
        ("SC101", "undeclared required context read"),
        ("SC102", "undeclared context write"),
        ("SC103", "dead input declaration (never read)"),
        ("SC104", "dead output declaration (never written)"),
        ("SC105", "dynamic context key defeats the contract (warning)"),
        ("SC106", "dead scratch/optional declaration"),
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        assert module.tree is not None
        stages: Dict[str, _StageInfo] = {}
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = _base_names(node)
            if "Stage" in bases or any(b in stages for b in bases):
                stages[node.name] = _collect_stage(node, stages)
        for name, info in stages.items():
            yield from self._check_stage(name, info, module)

    def _check_stage(
        self, name: str, info: _StageInfo, module: ModuleInfo
    ) -> Iterator[Finding]:
        inputs = set(info.decls.get("inputs", ()))
        outputs = set(info.decls.get("outputs", ()))
        scratch = set(info.decls.get("scratch", ()))
        optional = set(info.decls.get("optional", ()))
        written = {a.slot for a in info.accesses if a.kind == "write"}
        read = {a.slot for a in info.accesses if a.kind != "write"}

        for access in info.accesses:
            slot = access.slot
            if access.kind == "read":
                # A required read is satisfied by a declared input, a
                # scratch slot, or an output this stage itself wrote
                # (e.g. merge() re-reading what it setdefault'd).
                if slot not in inputs | scratch | (outputs & written):
                    yield self.finding(
                        "SC101",
                        f"{name}.{self._method_hint(info, access)} reads "
                        f"ctx[{slot!r}] but {slot!r} is not declared in "
                        f"inputs or scratch",
                        module, access.line,
                    )
            elif access.kind == "optional_read":
                if slot not in inputs | scratch | optional | outputs:
                    yield self.finding(
                        "SC101",
                        f"{name} reads ctx.get({slot!r}) but {slot!r} is not "
                        f"declared in inputs, optional or scratch",
                        module, access.line,
                    )
            else:  # write
                if slot not in outputs | scratch:
                    yield self.finding(
                        "SC102",
                        f"{name} writes ctx[{slot!r}] but {slot!r} is not "
                        f"declared in outputs or scratch",
                        module, access.line,
                    )

        decl_line = info.decl_lines.get
        # Dead-declaration rules look at the class's OWN declarations:
        # an inherited contract is exercised by the class that owns it.
        inputs = set(info.own.get("inputs", ()))
        outputs = set(info.own.get("outputs", ()))
        scratch = set(info.own.get("scratch", ()))
        optional = set(info.own.get("optional", ()))
        for slot in sorted(inputs - read):
            yield self.finding(
                "SC103",
                f"{name} declares input {slot!r} but never reads it",
                module, decl_line("inputs", info.node.lineno),
            )
        for slot in sorted(outputs - written):
            yield self.finding(
                "SC104",
                f"{name} declares output {slot!r} but never writes it",
                module, decl_line("outputs", info.node.lineno),
            )
        for slot in sorted(scratch - (read | written)):
            yield self.finding(
                "SC106",
                f"{name} declares scratch {slot!r} but never touches it",
                module, decl_line("scratch", info.node.lineno),
            )
        for slot in sorted(optional - read):
            yield self.finding(
                "SC106",
                f"{name} declares optional {slot!r} but never reads it",
                module, decl_line("optional", info.node.lineno),
            )
        for line in info.dynamic_lines:
            yield self.finding(
                "SC105",
                f"{name} addresses the context with a non-literal key; "
                f"the declared contract cannot cover it",
                module, line, severity="warning",
            )

    @staticmethod
    def _method_hint(info: _StageInfo, access: _Access) -> str:
        for stmt in info.node.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name in STAGE_METHODS:
                end = getattr(stmt, "end_lineno", stmt.lineno)
                if stmt.lineno <= access.line <= end:
                    return stmt.name
        return "?"
