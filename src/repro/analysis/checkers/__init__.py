"""The seven repo-specific checker families.

``ALL_CHECKERS`` is the ordered default set ``repro lint`` runs;
:func:`checkers_for` resolves ``--rule`` selections (family names or
individual rule codes) to checker instances.
"""

from __future__ import annotations

from typing import List, Sequence

from ..engine import Checker, LintUsageError
from .async_blocking import AsyncBlockingChecker
from .fault_tolerance import FaultToleranceChecker
from .kernel_identity import KernelIdentityChecker
from .pool_boundary import PoolBoundaryChecker
from .shm_payload import ShmPayloadChecker
from .stage_contract import StageContractChecker
from .transport import TransportChecker

__all__ = [
    "ALL_CHECKERS",
    "checkers_for",
    "StageContractChecker",
    "PoolBoundaryChecker",
    "KernelIdentityChecker",
    "AsyncBlockingChecker",
    "FaultToleranceChecker",
    "ShmPayloadChecker",
    "TransportChecker",
]

#: Default families, in report order.
ALL_CHECKERS = (
    StageContractChecker,
    PoolBoundaryChecker,
    KernelIdentityChecker,
    AsyncBlockingChecker,
    FaultToleranceChecker,
    ShmPayloadChecker,
    TransportChecker,
)


def checkers_for(rules: Sequence[str]) -> List[Checker]:
    """Instantiate the checkers selected by ``--rule`` tokens.

    Each token may be a family name (``stage-contract``) or one of its
    rule codes (``SC101`` selects the whole family — suppression, not
    selection, is per-code).  No tokens means every family.
    """
    if not rules:
        return [cls() for cls in ALL_CHECKERS]
    selected: List[Checker] = []
    for cls in ALL_CHECKERS:
        codes = {code for code, _ in cls.codes}
        if any(token == cls.name or token in codes for token in rules):
            selected.append(cls())
    known = {cls.name for cls in ALL_CHECKERS} | {
        code for cls in ALL_CHECKERS for code, _ in cls.codes
    }
    unknown = [token for token in rules if token not in known]
    if unknown:
        names = ", ".join(cls.name for cls in ALL_CHECKERS)
        raise LintUsageError(
            f"unknown rule(s): {', '.join(sorted(unknown))} "
            f"(families: {names})"
        )
    return selected
