"""``pool-boundary``: nothing unpicklable may cross the fork-pool pipe.

The serving stack's whole performance story rests on the PR 3 COW
discipline: :class:`~repro.serve.pool.PersistentWorkerPool` workers
inherit the dataset and its pre-built
:class:`~repro.core.kernels.DatasetArrays` through fork-time
copy-on-write, and only *small* payloads ever travel through the pool's
queues.  Two ways that discipline silently breaks:

* something **unpicklable** lands in a payload — lambdas, closures,
  bound methods, or the types that refuse pickling outright
  (``DatasetArrays``/``TreeArrays`` raise in ``__reduce__``) — and the
  flush dies with an opaque ``PicklingError`` at dispatch time;
* something **picklable but enormous** lands there — ``Dataset``,
  ``PageStore`` — and the flush "works" while re-shipping per batch the
  exact state the fork exists to share (``Dataset.__getstate__`` even
  drops its arrays, so workers silently rebuild them: the bug PR 3's
  token-registry fix closed by hand).

This checker flags both at lint time.  Boundary sites are calls to
``run_selection``/``run_shard_tasks_async``, pool construction
(``Pool(...)`` ``initializer=``/``initargs=``), pool dispatch methods
(``.map``/``.map_async``/``.apply``/``.apply_async``/``.imap``), and
scatter payload tuples — tuple literals whose first element is one of
the :func:`~repro.core.pipeline.execute_shard_payload` kinds.

Rules
-----
* ``PB201`` lambda or locally-defined function at a boundary site;
* ``PB202`` known COW-only type (``Dataset``, ``DatasetArrays``,
  ``TreeArrays``, ``PageStore``, or their factories ``arrays_for`` /
  ``tree_arrays_for``) flowing into a payload;
* ``PB203`` bound method (``self.x`` / instance attribute) used as a
  pool function — its pickle drags the whole instance through the pipe.

The analysis is deliberately shallow (single-function dataflow over
literal payloads); it proves presence of a violation, never absence.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from ..engine import Checker, Finding, ModuleInfo, call_name, const_str, walk_scope

__all__ = ["PoolBoundaryChecker", "COW_ONLY_TYPES", "PAYLOAD_KINDS"]

#: Types (and their lazy factories) that must stay behind the fork:
#: workers receive them via copy-on-write memory, never via pickle.
COW_ONLY_TYPES = frozenset({
    "Dataset", "DatasetArrays", "TreeArrays", "PageStore",
    "arrays_for", "tree_arrays_for",
})

#: First elements of execute_shard_payload work-item tuples.
PAYLOAD_KINDS = frozenset({"refine", "shortlist", "search", "indexed_search"})

#: Attribute calls that submit work (and their argument roles).
_SUBMIT_METHODS = frozenset({
    "run_selection", "run_shard_tasks_async",
    "map", "map_async", "starmap", "starmap_async",
    "imap", "imap_unordered", "apply", "apply_async",
})

#: Submit methods whose FIRST argument is a function shipped by pickle
#: (reference for module-level names, by value for anything bound).
_FUNC_FIRST = frozenset({
    "map", "map_async", "starmap", "starmap_async",
    "imap", "imap_unordered", "apply", "apply_async",
})


def _cow_origin(dotted: str) -> str:
    """The COW-only component of a dotted call name, or ``""``.

    Matches any component so classmethod constructors count too:
    ``Dataset.synthetic`` and ``kernels.DatasetArrays`` both resolve.
    """
    for part in dotted.split("."):
        if part in COW_ONLY_TYPES:
            return part
    return ""


class PoolBoundaryChecker(Checker):
    """Flag unpicklable / COW-only state at fork-pool boundaries."""

    name = "pool-boundary"
    description = (
        "lambdas, closures, bound methods and COW-only types must not "
        "cross the PersistentWorkerPool / scatter-payload boundary"
    )
    codes = (
        ("PB201", "lambda or local function crosses the fork boundary"),
        ("PB202", "COW-only type shipped through a pool payload"),
        ("PB203", "bound method used as a pool function"),
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        assert module.tree is not None
        for scope in ast.walk(module.tree):
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(scope, module)
        # Module-level payload tuples (rare, but fixtures use them).
        yield from self._check_scope(module.tree, module, top_level=True)

    # ------------------------------------------------------------------
    def _check_scope(
        self, scope: ast.AST, module: ModuleInfo, top_level: bool = False
    ) -> Iterator[Finding]:
        # walk_scope(skip_nested=True): nested defs get their own
        # _check_scope visit from check(); don't double-report their
        # bodies from the enclosing scope.
        tainted = self._tainted_names(scope)
        local_funcs = self._local_functions(scope) if not top_level else set()
        payload_seen: Set[int] = set()
        for node in walk_scope(scope, skip_nested=True):
            if isinstance(node, ast.Call):
                yield from self._check_call(node, module, tainted, local_funcs)
                if self._is_boundary_call(node):
                    # Payload tuples inside a boundary call were just
                    # scanned; don't report them a second time below.
                    for sub in ast.walk(node):
                        if isinstance(sub, ast.Tuple):
                            payload_seen.add(id(sub))
            elif (
                isinstance(node, ast.Tuple)
                and id(node) not in payload_seen
                and self._is_payload_tuple(node)
            ):
                yield from self._scan_expr(
                    node, module, tainted, local_funcs,
                    site="scatter payload",
                )

    @staticmethod
    def _tainted_names(scope: ast.AST) -> Dict[str, str]:
        """Names assigned from COW-only constructors in this scope."""
        tainted: Dict[str, str] = {}
        for node in walk_scope(scope, skip_nested=True):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            origin = _cow_origin(call_name(value.func))
            if not origin:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    tainted[target.id] = origin
        return tainted

    @staticmethod
    def _local_functions(scope: ast.AST) -> Set[str]:
        """Functions defined inside this (function) scope: closures."""
        return {
            node.name
            for node in ast.walk(scope)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not scope
        }

    @staticmethod
    def _is_payload_tuple(node: ast.Tuple) -> bool:
        if not node.elts:
            return False
        return const_str(node.elts[0]) in PAYLOAD_KINDS

    @staticmethod
    def _is_boundary_call(node: ast.Call) -> bool:
        func = node.func
        if call_name(func).rsplit(".", 1)[-1] == "Pool":
            return any(kw.arg in ("initializer", "initargs") for kw in node.keywords)
        return isinstance(func, ast.Attribute) and func.attr in _SUBMIT_METHODS

    # ------------------------------------------------------------------
    def _check_call(
        self,
        node: ast.Call,
        module: ModuleInfo,
        tainted: Dict[str, str],
        local_funcs: Set[str],
    ) -> Iterator[Finding]:
        func = node.func
        # Pool construction: initializer / initargs keywords.
        if isinstance(func, (ast.Name, ast.Attribute)) and \
                call_name(func).rsplit(".", 1)[-1] == "Pool":
            for kw in node.keywords:
                if kw.arg in ("initializer", "initargs"):
                    yield from self._scan_expr(
                        kw.value, module, tainted, local_funcs,
                        site=f"Pool {kw.arg}",
                        func_position=(kw.arg == "initializer"),
                    )
            return
        if not isinstance(func, ast.Attribute) or func.attr not in _SUBMIT_METHODS:
            return
        # `map`-family on arbitrary objects would over-match the
        # builtin; only attribute calls reach here, and in this codebase
        # every `.map`-style attribute is a pool.  The repo-specific
        # trade-off is intended.
        args = list(node.args)
        if func.attr in _FUNC_FIRST and args:
            yield from self._scan_expr(
                args[0], module, tainted, local_funcs,
                site=f"{func.attr}() function", func_position=True,
            )
            args = args[1:]
        for arg in args:
            yield from self._scan_expr(
                arg, module, tainted, local_funcs,
                site=f"{func.attr}() payload",
            )

    def _scan_expr(
        self,
        node: ast.expr,
        module: ModuleInfo,
        tainted: Dict[str, str],
        local_funcs: Set[str],
        site: str,
        func_position: bool = False,
    ) -> Iterator[Finding]:
        """Flag violations anywhere inside one boundary expression."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Lambda):
                yield self.finding(
                    "PB201",
                    f"lambda in {site}: lambdas cannot be pickled across "
                    f"the fork-pool pipe",
                    module, sub.lineno,
                )
            elif isinstance(sub, ast.Name):
                if sub.id in local_funcs:
                    yield self.finding(
                        "PB201",
                        f"locally-defined function {sub.id!r} in {site}: "
                        f"closures cannot be pickled; hoist it to module "
                        f"level",
                        module, sub.lineno,
                    )
                elif sub.id in tainted:
                    yield self.finding(
                        "PB202",
                        f"{sub.id!r} (a {tainted[sub.id]}) in {site}: "
                        f"COW-only state must be inherited at fork time, "
                        f"never shipped through the pool pipe (PR 3 "
                        f"token-registry discipline)",
                        module, sub.lineno,
                    )
            elif isinstance(sub, ast.Call):
                origin = _cow_origin(call_name(sub.func))
                if origin:
                    yield self.finding(
                        "PB202",
                        f"{call_name(sub.func)}(...) constructed inside "
                        f"{site}: {origin} must stay behind the fork "
                        f"boundary (workers inherit it via copy-on-write)",
                        module, sub.lineno,
                    )
        if func_position and isinstance(node, ast.Attribute):
            yield self.finding(
                "PB203",
                f"bound method {call_name(node)!r} as {site}: pickling a "
                f"bound method drags its whole instance through the pipe; "
                f"use a module-level function plus the worker registry",
                module, node.lineno,
            )
