"""``transport``: the socket path has exactly one pickle funnel.

The multi-host scatter transport (:mod:`repro.serve.transport`) puts
every pickled byte behind :class:`~repro.serve.transport.FrameCodec`
(frame bodies) and :class:`~repro.core.payload.PayloadCodec` (scatter
payloads).  That funnel is what makes the wire auditable: protocol
version bumps, size accounting, and the eventual
restricted-unpickler hardening all have a single choke point.  A raw
``pickle.dumps``/``pickle.loads`` sprinkled elsewhere in a networked
module silently forks the wire format — frames that one side frames
and the other side eyeballs — and reopens the classic
unpickle-from-the-network hole one call site at a time.

Rules
-----
* ``TR701`` raw ``pickle.dumps``/``loads``/``dump``/``load`` in a
  module that touches sockets (imports ``socket`` or ``asyncio``)
  outside a ``class FrameCodec`` / ``class PayloadCodec`` body.

Modules that never import ``socket`` or ``asyncio`` are out of scope:
pickling to disk or down a multiprocessing pipe is the pool-boundary
family's business, not this one's.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..engine import Checker, Finding, ModuleInfo, call_name

__all__ = ["TransportChecker", "PICKLE_FUNNEL_CLASSES"]

#: Class bodies sanctioned to call pickle on the socket path.
PICKLE_FUNNEL_CLASSES = frozenset({"FrameCodec", "PayloadCodec"})

#: ``pickle`` entry points that define a wire format when they appear
#: next to a socket.
_PICKLE_CALLS = frozenset({
    "pickle.dumps", "pickle.loads", "pickle.dump", "pickle.load",
})

#: Imports that put a module on the socket path.
_SOCKET_MODULES = frozenset({"socket", "asyncio"})


class TransportChecker(Checker):
    """Flag out-of-funnel pickle calls in socket-touching modules."""

    name = "transport"
    description = (
        "socket-path modules pickle only through FrameCodec/PayloadCodec; "
        "a raw pickle call next to a socket forks the wire format"
    )
    codes = (
        ("TR701", "raw pickle call on the socket path outside the codec funnels"),
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        assert module.tree is not None
        if not self._on_socket_path(module.tree):
            return
        exempt = self._funnel_class_calls(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or id(node) in exempt:
                continue
            dotted = call_name(node.func)
            if dotted not in _PICKLE_CALLS:
                continue
            yield self.finding(
                "TR701",
                f"{dotted}(...) on the socket path: frame bodies go "
                f"through FrameCodec.encode_body/decode_body and scatter "
                f"payloads through PayloadCodec — a raw pickle call here "
                f"forks the wire format and bypasses the one place "
                f"protocol versioning and unpickler hardening can live",
                module, node.lineno,
            )

    @staticmethod
    def _on_socket_path(tree: ast.AST) -> bool:
        """True when the module imports ``socket`` or ``asyncio``."""
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                if any(a.name.split(".")[0] in _SOCKET_MODULES for a in node.names):
                    return True
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] in _SOCKET_MODULES:
                    return True
        return False

    @staticmethod
    def _funnel_class_calls(tree: ast.AST) -> Set[int]:
        """ids of every Call node inside a sanctioned codec class body."""
        exempt: Set[int] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.ClassDef)
                and node.name in PICKLE_FUNNEL_CLASSES
            ):
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Call):
                        exempt.add(id(sub))
        return exempt
