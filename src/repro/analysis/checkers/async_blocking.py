"""``async-blocking``: no synchronous stalls inside ``async def`` bodies.

The serving front-end (:mod:`repro.serve.server`) is a single asyncio
event loop: one blocking call inside an ``async def`` freezes *every*
in-flight query, not just the caller's.  The engine work itself is
correctly routed through ``loop.run_in_executor`` — this checker guards
the ways that discipline erodes:

* ``time.sleep`` where only ``await asyncio.sleep`` is legal;
* ``Pool.join``-style blocking shutdown/synchronization calls
  (``.join()``, and ``close``/``terminate``/``close_pools`` on
  pool-/worker-like receivers) — these wait on worker processes while
  holding the loop;
* blocking file I/O (``open(...)``) on the loop thread;
* synchronous ``engine.query`` / ``engine.query_batch`` calls — the
  exact work ``run_in_executor`` exists for (handing the *bound method*
  to the executor is fine and is what the server does; *calling* it
  inline is not).

Only statements belonging to the ``async def`` itself are checked:
nested synchronous ``def``\\ s are other execution contexts (typically
the functions handed to an executor), so they are skipped.

Rules
-----
* ``AB401`` ``time.sleep`` in async context;
* ``AB402`` blocking pool/thread synchronization in async context;
* ``AB403`` blocking file I/O in async context;
* ``AB404`` synchronous engine query not routed through an executor.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..engine import Checker, Finding, ModuleInfo, call_name, walk_scope

__all__ = ["AsyncBlockingChecker"]

#: Receiver names that mark a join/close target as a process pool,
#: worker, or thread (rather than, say, a string being joined).
_POOLISH_RE = re.compile(r"pool|worker|proc|thread|joiner", re.IGNORECASE)

#: Attribute calls that block on worker lifecycle when the receiver is
#: pool-like.  ``.join()`` with no arguments is blocking on *any*
#: receiver: ``str.join`` always takes the iterable argument.
_LIFECYCLE_ATTRS = frozenset({"join", "close", "terminate", "close_pools"})

#: Engine entry points that run a full query pipeline synchronously.
_QUERY_ATTRS = frozenset({"query", "query_batch"})


class AsyncBlockingChecker(Checker):
    """Flag blocking calls on the event-loop thread."""

    name = "async-blocking"
    description = (
        "async def bodies must not call time.sleep, blocking pool "
        "joins, blocking file I/O, or synchronous engine queries"
    )
    codes = (
        ("AB401", "time.sleep in async context"),
        ("AB402", "blocking pool/thread synchronization in async context"),
        ("AB403", "blocking file I/O in async context"),
        ("AB404", "synchronous engine query on the event loop"),
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_body(node, module)

    def _check_async_body(
        self, func: ast.AsyncFunctionDef, module: ModuleInfo
    ) -> Iterator[Finding]:
        # skip_nested: a sync def inside the async def is a different
        # execution context (usually the payload for run_in_executor).
        # Nested *async* defs are still walked by check() itself.
        for node in walk_scope(func, skip_nested=True):
            if not isinstance(node, ast.Call):
                continue
            target = node.func
            name = call_name(target)
            tail = name.rsplit(".", 1)[-1]
            if name in ("time.sleep", "sleep") and name != "asyncio.sleep":
                # Bare `sleep` is overwhelmingly `from time import
                # sleep`; asyncio.sleep appears awaited + qualified.
                yield self.finding(
                    "AB401",
                    f"{name}() inside async def {func.name!r} blocks the "
                    f"event loop; use `await asyncio.sleep(...)`",
                    module, node.lineno,
                )
            elif isinstance(target, ast.Attribute) and tail in _LIFECYCLE_ATTRS:
                receiver = call_name(target.value)
                no_arg_join = tail == "join" and not node.args and not node.keywords
                poolish = bool(
                    _POOLISH_RE.search(receiver) or _POOLISH_RE.search(tail)
                )
                if no_arg_join or poolish:
                    yield self.finding(
                        "AB402",
                        f"{name}() inside async def {func.name!r} blocks "
                        f"the event loop waiting on workers; route it "
                        f"through run_in_executor or bound shutdown",
                        module, node.lineno,
                    )
            elif name in ("open", "io.open", "os.open"):
                yield self.finding(
                    "AB403",
                    f"{name}() inside async def {func.name!r} is blocking "
                    f"file I/O on the event-loop thread; use "
                    f"run_in_executor",
                    module, node.lineno,
                )
            elif isinstance(target, ast.Attribute) and tail in _QUERY_ATTRS:
                yield self.finding(
                    "AB404",
                    f"synchronous {name}() inside async def {func.name!r} "
                    f"runs a whole query pipeline on the event loop; hand "
                    f"the bound method to loop.run_in_executor instead "
                    f"(see MaxBRSTkNNServer._execute)",
                    module, node.lineno,
                )
