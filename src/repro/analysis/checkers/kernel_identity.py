"""``kernel-identity``: bitwise-identity kernels ban re-associating ops.

The PR 3 exactness convention (documented on
:class:`~repro.core.kernels.TreeArrays` and
:class:`~repro.core.kernels.CandidatePoolArrays`): every numpy kernel
that feeds a *decision* — priority-queue order, pruning, pool
admission, ``RSk`` bounds — must be **bitwise identical** to the scalar
reference, not merely close.  That only holds when

* floating-point sums keep the scalar association order (ascending
  term ids, strictly left to right) — numpy's pairwise ``sum``,
  ``einsum``/``dot``/``matmul`` reductions and ``np.add.reduceat``
  (which re-associates long segments) all break it;
* every spatial expression uses only correctly-rounded IEEE-754 ops
  written exactly as the scalar metric writes them — ``hypot`` (libm)
  is *not* correctly rounded and differs from ``sqrt(dx*dx + dy*dy)``
  in the last ulp across platforms;
* no compensated summation sneaks in — ``math.fsum`` is *more*
  accurate than the scalar ``total += w`` loop, which is exactly the
  problem.

This checker enforces the convention inside the identity-kernel
functions: a configurable allowlist of function names
(:data:`IDENTITY_FUNCTIONS`, matched in any module) plus any function
whose ``def`` line carries a ``# repro: identity-kernel`` marker.

Rules
-----
* ``KI301`` non-correctly-rounded / compensated op (``hypot``,
  ``fsum``) inside an identity kernel;
* ``KI302`` sum-order-changing reduction (``.sum``/``np.sum``,
  ``einsum``, ``dot``, ``matmul``, ``@``, ``reduceat``, ``nansum``,
  ``prod``) inside an identity kernel.

Python's builtin ``sum(...)`` stays legal — it accumulates strictly
left to right, which is the scalar reference's own association order.
"""

from __future__ import annotations

import ast
import re
from typing import FrozenSet, Iterator, Optional

from ..engine import Checker, Finding, ModuleInfo, call_name

__all__ = ["KernelIdentityChecker", "IDENTITY_FUNCTIONS"]

#: Default allowlist: the decision/bound kernels of core/kernels.py
#: whose docstrings promise bitwise identity with the scalar backend.
IDENTITY_FUNCTIONS = frozenset({
    "_pairwise_norm",
    "_masked_segment_sums",
    "frontier_bounds",
    "node_lower_bounds",
    "node_rsk",
    "weights_of",
})

#: Opt-in marker for new identity kernels outside the allowlist.
_MARKER_RE = re.compile(r"#\s*repro:\s*identity-kernel")

#: KI301: not correctly rounded / compensated — can never appear in a
#: bitwise-identity kernel, whatever the shape of the computation.
_BANNED_EXACTNESS = frozenset({"hypot", "fsum"})

#: KI302: reductions that re-associate floating-point sums.
_BANNED_REDUCTIONS = frozenset({
    "sum", "nansum", "einsum", "dot", "matmul", "inner", "vdot",
    "reduceat", "prod", "nanprod",
})


class KernelIdentityChecker(Checker):
    """Ban re-associating / non-correctly-rounded ops in decision kernels."""

    name = "kernel-identity"
    description = (
        "bitwise-identity kernels must not use hypot/fsum or "
        "sum-order-changing reductions (PR 3 exactness convention)"
    )
    codes = (
        ("KI301", "non-correctly-rounded or compensated floating op"),
        ("KI302", "sum-order-changing reduction"),
    )

    def __init__(self, functions: Optional[FrozenSet[str]] = None) -> None:
        self.functions = IDENTITY_FUNCTIONS if functions is None else functions

    def cache_key(self) -> str:
        return f"{self.name}({','.join(sorted(self.functions))})"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and self._is_identity_kernel(node, module):
                yield from self._check_kernel(node, module)

    def _is_identity_kernel(self, node: ast.AST, module: ModuleInfo) -> bool:
        if node.name in self.functions:
            return True
        return bool(_MARKER_RE.search(module.line_text(node.lineno)))

    def _check_kernel(self, func: ast.AST, module: ModuleInfo) -> Iterator[Finding]:
        kernel = func.name
        # Nested helpers run inside the kernel's contract too — do NOT
        # skip nested defs here (unlike the scoped checkers).
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                tail = call_name(node.func).rsplit(".", 1)[-1]
                if tail in _BANNED_EXACTNESS:
                    yield self.finding(
                        "KI301",
                        f"{call_name(node.func)}() in identity kernel "
                        f"{kernel!r}: {self._why_exactness(tail)}",
                        module, node.lineno,
                    )
                elif (
                    tail in _BANNED_REDUCTIONS
                    and isinstance(node.func, ast.Attribute)
                ):
                    # Attribute calls only: builtin sum(...) accumulates
                    # strictly left to right and stays legal.
                    yield self.finding(
                        "KI302",
                        f"{call_name(node.func)}() in identity kernel "
                        f"{kernel!r}: numpy reductions re-associate "
                        f"floating-point sums (pairwise/blocked), so the "
                        f"result can differ from the scalar left-to-right "
                        f"accumulation in the last ulp — sum in scalar "
                        f"order instead (see _masked_segment_sums)",
                        module, node.lineno,
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                yield self.finding(
                    "KI302",
                    f"matrix product (@) in identity kernel {kernel!r}: "
                    f"BLAS-backed reductions re-associate floating-point "
                    f"sums; accumulate in scalar order instead",
                    module, node.lineno,
                )

    @staticmethod
    def _why_exactness(name: str) -> str:
        if name == "hypot":
            return (
                "libm hypot is not correctly rounded and differs from "
                "sqrt(dx*dx + dy*dy) in the last ulp across platforms; "
                "write the expression exactly as the scalar metric does"
            )
        return (
            "fsum's compensated summation is *more* accurate than the "
            "scalar total += w loop, so decisions can flip near "
            "thresholds; accumulate exactly like the scalar reference"
        )
