"""repro — reproduction of "Maximizing Bichromatic Reverse Spatial and
Textual k Nearest Neighbor Queries" (Choudhury et al., PVLDB 9(6), 2016).

The library answers MaxBRSTkNN queries — find a location and a keyword
set for a new object such that it enters the spatial-textual top-k of
the maximum number of users — together with every substrate the paper
depends on: R-tree, IR-tree, MIR-tree, MIUR-tree, three text relevance
measures, a simulated-I/O disk model, joint top-k processing, and both
the greedy approximate and the pruned exact keyword selectors.

Quickstart
----------
>>> from repro import Dataset, MaxBRSTkNNEngine, MaxBRSTkNNQuery
>>> from repro.datagen import flickr_like, generate_users
>>> objects, vocab = flickr_like(num_objects=500, seed=7)
>>> protocol = generate_users(objects, num_users=50, seed=7)
>>> ds = Dataset(objects, protocol.users, relevance="LM", alpha=0.5)
>>> engine = MaxBRSTkNNEngine(ds)
"""

from .core.config import Backend, EngineConfig, Method, Mode, Partitioner, QueryOptions
from .core.engine import MaxBRSTkNNEngine
from .core.planner import QueryPlan
from .core.query import MaxBRSTkNNQuery, MaxBRSTkNNResult, QueryStats
from .model.dataset import Dataset, DatasetStats
from .model.objects import STObject, SuperUser, User
from .spatial.geometry import Point, Rect

__version__ = "1.2.0"

__all__ = [
    "Backend",
    "Dataset",
    "DatasetStats",
    "EngineConfig",
    "MaxBRSTkNNEngine",
    "MaxBRSTkNNQuery",
    "MaxBRSTkNNResult",
    "Method",
    "Mode",
    "Partitioner",
    "QueryOptions",
    "QueryPlan",
    "QueryStats",
    "Point",
    "Rect",
    "STObject",
    "SuperUser",
    "User",
    "__version__",
]
