"""Figure 10: effect of varying |L| (number of candidate locations).

Paper shape: selection runtime grows roughly linearly with |L| for both
exact and approx; the ratio improves slightly at large |L|.
"""

import pytest

from repro.bench.harness import measure_selection

from conftest import bench_for, run_once

LS = [1, 50, 300]


@pytest.mark.parametrize("num_locations", LS)
@pytest.mark.parametrize("method", ["baseline", "exact", "approx"])
def test_fig10a_selection(benchmark, num_locations, method):
    bench = bench_for("num_locations", num_locations)
    metrics = run_once(benchmark, measure_selection, bench, method)
    benchmark.extra_info["cardinality"] = metrics.cardinality


@pytest.mark.parametrize("num_locations", LS)
def test_fig10b_approximation_ratio(benchmark, num_locations):
    bench = bench_for("num_locations", num_locations)

    def both():
        exact = measure_selection(bench, "exact")
        approx = measure_selection(bench, "approx")
        return 1.0 if exact.cardinality == 0 else approx.cardinality / exact.cardinality

    ratio = run_once(benchmark, both)
    benchmark.extra_info["approximation_ratio"] = ratio
    assert 0.0 <= ratio <= 1.0
