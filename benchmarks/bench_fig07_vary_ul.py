"""Figure 7: effect of varying UL (keywords per user).

Paper shape: baseline cost grows with UL (more objects become relevant
per user); the joint algorithm's I/O stays nearly constant because each
node is still read at most once.
"""

import pytest

from repro.bench.harness import (
    measure_selection,
    measure_topk_baseline,
    measure_topk_joint,
)

from conftest import bench_for, run_once

ULS = [1, 3, 6]


@pytest.mark.parametrize("ul", ULS)
def test_fig7ab_topk_baseline(benchmark, ul):
    bench = bench_for("ul", ul)
    metrics = run_once(benchmark, measure_topk_baseline, bench)
    benchmark.extra_info["mrpu_ms"] = metrics.mrpu_ms
    benchmark.extra_info["miocpu"] = metrics.miocpu


@pytest.mark.parametrize("ul", ULS)
def test_fig7ab_topk_joint(benchmark, ul):
    bench = bench_for("ul", ul)
    metrics = run_once(benchmark, measure_topk_joint, bench)
    benchmark.extra_info["mrpu_ms"] = metrics.mrpu_ms
    benchmark.extra_info["miocpu"] = metrics.miocpu


@pytest.mark.parametrize("ul", [1, 6])
@pytest.mark.parametrize("method", ["baseline", "exact", "approx"])
def test_fig7c_selection(benchmark, ul, method):
    bench = bench_for("ul", ul)
    run_once(benchmark, measure_selection, bench, method)


@pytest.mark.parametrize("ul", ULS)
def test_fig7d_approximation_ratio(benchmark, ul):
    bench = bench_for("ul", ul)

    def both():
        exact = measure_selection(bench, "exact")
        approx = measure_selection(bench, "approx")
        return 1.0 if exact.cardinality == 0 else approx.cardinality / exact.cardinality

    ratio = run_once(benchmark, both)
    benchmark.extra_info["approximation_ratio"] = ratio
    assert 0.0 <= ratio <= 1.0
