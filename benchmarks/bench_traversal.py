"""Phase-1 isolation: the joint MIR-tree traversal, python vs numpy.

Not a paper figure — this isolates the cost PR 3 attacks: Algorithm
1's frontier traversal, the dominant part of every cold query.  Three
sections:

1. **TreeArrays build** — the once-per-engine flattening cost the
   numpy backend amortizes over every traversal.
2. **Traversal backends** — best-of-N wall time of a cold
   ``joint_traversal`` per backend at the default ``k``, with a
   built-in check that the pools are *bitwise identical* (the frontier
   kernels' exactness contract) and a ≥ 2x speedup acceptance bar on
   the full-size run.
3. **Cross-k pool sharing** — a mixed-k batch (k in {1, 5, 10}) must
   run exactly **one** traversal (asserted via ``engine.traversal_runs``)
   and return results identical to per-k sequential queries.

Run::

    python benchmarks/bench_traversal.py              # full, 2x bar
    python benchmarks/bench_traversal.py --tiny       # CI smoke
    python benchmarks/bench_traversal.py --json out.json

``--max-slowdown X`` (used by the CI bench-smoke job) fails the run if
the numpy backend is more than X times slower than python — a tiny
dataset cannot show the speedup, but it catches kernel regressions
that make vectorization a net loss.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro import MaxBRSTkNNEngine, QueryOptions  # noqa: E402
from repro.bench.harness import build_workbench  # noqa: E402
from repro.bench.params import DEFAULTS  # noqa: E402
from repro.core.joint_topk import joint_traversal  # noqa: E402
from repro.core.kernels import HAS_NUMPY, tree_arrays_for  # noqa: E402
from repro.datagen.users import generate_users, query_pool  # noqa: E402
from repro.storage.iostats import IOCounter  # noqa: E402
from repro.storage.pager import PageStore  # noqa: E402


def traversals_identical(a, b) -> bool:
    if a.rsk_group != b.rsk_group:
        return False
    for name in ("lo", "ro"):
        pa, pb = getattr(a, name), getattr(b, name)
        if len(pa) != len(pb):
            return False
        for x, y in zip(pa, pb):
            if (
                x.obj.item_id != y.obj.item_id
                or x.lower != y.lower
                or x.upper != y.upper
            ):
                return False
    return True


def time_traversal(engine, k, backend, repeats):
    """Best-of-N cold traversal (fresh I/O counter per run)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        store = PageStore(counter=IOCounter())
        t0 = time.perf_counter()
        result = joint_traversal(
            engine.object_tree, engine.dataset, k, store=store, backend=backend
        )
        best = min(best, time.perf_counter() - t0)
    return best, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=DEFAULTS.num_objects)
    parser.add_argument("--users", type=int, default=DEFAULTS.num_users)
    parser.add_argument("--k", type=int, default=DEFAULTS.k)
    parser.add_argument("--seed", type=int, default=DEFAULTS.seed)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--tiny", action="store_true",
                        help="smoke-test scale for CI (no 2x bar)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write machine-readable results to PATH")
    parser.add_argument("--max-slowdown", type=float, default=None,
                        help="fail if numpy is more than X times slower "
                             "than python (CI regression gate)")
    args = parser.parse_args(argv)

    if not HAS_NUMPY:
        print("numpy not installed; nothing to compare")
        return 0

    config = DEFAULTS.with_(
        num_objects=args.objects, num_users=args.users, k=args.k,
        seed=args.seed,
    )
    if args.tiny:
        config = config.with_(num_objects=300, num_users=40)
        args.repeats = max(args.repeats, 5)

    print(f"dataset: {config.label()}", flush=True)
    bench = build_workbench(config, cached=False)
    engine = MaxBRSTkNNEngine(
        bench.dataset, fanout=config.fanout, index_users=True
    )

    t0 = time.perf_counter()
    arrays = tree_arrays_for(engine.object_tree)
    build_s = time.perf_counter() - t0
    print(
        f"TreeArrays build: {1000 * build_s:.1f} ms "
        f"({arrays.num_entries} entries, {len(arrays.ent_term)} summary terms; "
        f"once per engine)"
    )

    timings = {}
    results = {}
    for backend in ("python", "numpy"):
        elapsed, result = time_traversal(engine, config.k, backend, args.repeats)
        timings[backend] = elapsed
        results[backend] = result
        pool = len(result.lo) + len(result.ro)
        print(
            f"traversal k={config.k} backend={backend:<7}: "
            f"{1000 * elapsed:8.2f} ms  (candidate pool: {pool})",
            flush=True,
        )
    speedup = timings["python"] / timings["numpy"] if timings["numpy"] else 0.0
    print(f"phase-1 speedup numpy vs python: {speedup:.2f}x")

    if not traversals_identical(results["python"], results["numpy"]):
        print("EQUIVALENCE FAILURE: traversal pools differ across backends")
        return 1
    print("equivalence check: numpy pools bitwise-identical to python")

    # Cross-k pool sharing: one walk serves a whole mixed-k batch.
    workload = generate_users(
        bench.dataset.objects,
        num_users=config.num_users,
        keywords_per_user=config.ul,
        unique_keywords=config.uw,
        area_side=config.area,
        seed=config.seed,
    )
    mixed_ks = [1, 5, 10]
    queries = []
    for i, q in enumerate(
        query_pool(workload, len(mixed_ks) * 2, num_locations=5, ws=config.ws,
                   k=config.k, seed=config.seed, seed_stride=101)
    ):
        q.k = mixed_ks[i % len(mixed_ks)]
        queries.append(q)

    sequential = [engine.query(q, QueryOptions(backend="python")) for q in queries]
    engine.clear_topk_cache()
    runs_before = engine.traversal_runs
    t0 = time.perf_counter()
    batched = engine.query_batch(queries, QueryOptions())
    batch_s = time.perf_counter() - t0
    walks = engine.traversal_runs - runs_before
    mismatches = sum(
        1
        for solo, bat in zip(sequential, batched)
        if (
            solo.location != bat.location
            or solo.keywords != bat.keywords
            or solo.brstknn != bat.brstknn
        )
    )
    print(
        f"mixed-k batch (k in {{{','.join(map(str, mixed_ks))}}}, "
        f"{len(queries)} queries): {walks} traversal(s), "
        f"{1000 * batch_s:.1f} ms total"
    )
    if walks != 1:
        print(f"ACCEPTANCE FAILURE: expected exactly 1 shared traversal, ran {walks}")
        return 1
    if mismatches:
        print(f"EQUIVALENCE FAILURE: {mismatches} batched results differ")
        return 1
    print("cross-k check: one walk, results identical to per-k sequential")

    if args.json:
        payload = {
            "benchmark": "traversal",
            "dataset": config.label(),
            "k": config.k,
            "tree_arrays_build_s": build_s,
            "traversal_s": timings,
            "speedup_numpy": speedup,
            "mixed_k": {
                "ks": mixed_ks,
                "queries": len(queries),
                "traversals": walks,
                "batch_s": batch_s,
            },
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")

    if args.max_slowdown is not None and timings["numpy"] > args.max_slowdown * timings["python"]:
        print(
            f"REGRESSION: numpy {1000 * timings['numpy']:.2f} ms is more than "
            f"{args.max_slowdown:.2f}x slower than python "
            f"{1000 * timings['python']:.2f} ms"
        )
        return 1
    if not args.tiny and speedup < 2.0:
        print("ACCEPTANCE FAILURE: phase-1 speedup below 2x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
