"""Figure 9: effect of varying Area (the user MBR side length).

Paper shape: even with sparse users the joint algorithm keeps its
advantage because the keyword union stays the same and shared I/O
still applies.
"""

import pytest

from repro.bench.harness import measure_topk_baseline, measure_topk_joint

from conftest import bench_for, run_once

AREAS = [1.0, 5.0, 20.0]


@pytest.mark.parametrize("area", AREAS)
def test_fig9ab_topk_baseline(benchmark, area):
    bench = bench_for("area", area)
    metrics = run_once(benchmark, measure_topk_baseline, bench)
    benchmark.extra_info["mrpu_ms"] = metrics.mrpu_ms
    benchmark.extra_info["miocpu"] = metrics.miocpu


@pytest.mark.parametrize("area", AREAS)
def test_fig9ab_topk_joint(benchmark, area):
    bench = bench_for("area", area)
    metrics = run_once(benchmark, measure_topk_joint, bench)
    benchmark.extra_info["mrpu_ms"] = metrics.mrpu_ms
    benchmark.extra_info["miocpu"] = metrics.miocpu
