"""Figure 11: effect of varying ws (keyword budget).

Paper shape: baseline and exact runtimes explode combinatorially with
ws while the greedy approx stays nearly flat; the ratio dips mid-range
and recovers once the BRSTkNN growth levels off.
"""

import pytest

from repro.bench.harness import measure_selection

from conftest import bench_for, run_once

# ws > 4 makes the exact method combinatorial; 4 keeps the suite quick
# while already showing the blow-up (the report sweeps to 8).
WSS = [1, 2, 4]


@pytest.mark.parametrize("ws", WSS)
@pytest.mark.parametrize("method", ["baseline", "exact", "approx"])
def test_fig11a_selection(benchmark, ws, method):
    bench = bench_for("ws", ws)
    run_once(benchmark, measure_selection, bench, method)


@pytest.mark.parametrize("ws", WSS)
def test_fig11b_approximation_ratio(benchmark, ws):
    bench = bench_for("ws", ws)

    def both():
        exact = measure_selection(bench, "exact")
        approx = measure_selection(bench, "approx")
        return 1.0 if exact.cardinality == 0 else approx.cardinality / exact.cardinality

    ratio = run_once(benchmark, both)
    benchmark.extra_info["approximation_ratio"] = ratio
    assert 0.0 <= ratio <= 1.0
