"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not paper figures — these quantify the cost/benefit of individual
design decisions so a downstream user can tune them:

* **MIR vs IR postings** — the extra min-weight per posting buys the
  joint traversal's lower bounds; measure the storage overhead and the
  baseline search cost on both layouts.
* **Buffer pool** — the paper evaluates cold queries; an LRU buffer
  models the warm case and bounds the attainable I/O saving.
* **Fanout** — wider nodes mean fewer levels but coarser bounds; the
  joint traversal is sensitive to both.
* **Greedy prefix evaluation** — our greedy selector evaluates every
  prefix of the greedy choice (a deviation fixing non-monotone LM
  scores); measure its cost against the raw greedy pick.
"""

import pytest

from repro import Dataset, MaxBRSTkNNEngine
from repro.bench.harness import measure_topk_joint, measure_selection
from repro.datagen import candidate_locations, flickr_like, generate_users
from repro.index.irtree import IRTree, MIRTree
from repro.topk.single import topk_all_users_individually

from conftest import BENCH_BASE, bench_for, run_once


def _small_world(seed=5):
    objects, vocab = flickr_like(num_objects=1000, seed=seed)
    workload = generate_users(objects, num_users=100, seed=seed)
    candidate_locations(workload, num_locations=10, seed=seed)
    dataset = Dataset(objects, workload.users, relevance="LM", vocabulary=vocab)
    return dataset


@pytest.mark.parametrize("layout", ["ir", "mir"])
def test_ablation_posting_layout_build(benchmark, layout):
    """Index build cost and on-disk size, IR vs MIR posting layout."""
    dataset = _small_world()

    def build():
        cls = IRTree if layout == "ir" else MIRTree
        if layout == "ir":
            return IRTree(dataset.objects, dataset.relevance, minmax=False)
        return MIRTree(dataset.objects, dataset.relevance)

    tree = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["inverted_bytes"] = tree.total_inverted_bytes()


@pytest.mark.parametrize("buffer_pages", [0, 1000, 100000])
def test_ablation_buffer_pool(benchmark, buffer_pages):
    """Warm-cache upside of the per-user baseline search."""
    dataset = _small_world()
    engine = MaxBRSTkNNEngine(dataset, buffer_pages=buffer_pages)

    def run():
        engine.reset_io()
        topk_all_users_individually(
            engine.object_tree, dataset, 10, store=engine.store
        )
        return engine.io.total

    io = run_once(benchmark, run)
    benchmark.extra_info["total_io"] = io
    if engine.store.buffer is not None:
        benchmark.extra_info["hit_rate"] = round(engine.store.buffer.hit_rate, 3)


@pytest.mark.parametrize("fanout", [8, 32, 128])
def test_ablation_fanout(benchmark, fanout):
    """Tree fanout vs joint-traversal cost."""
    bench = bench_for(None, None, BENCH_BASE.with_(fanout=fanout))
    metrics = run_once(benchmark, measure_topk_joint, bench)
    benchmark.extra_info["total_io"] = metrics.total_io


@pytest.mark.parametrize("ws", [2, 4])
def test_ablation_greedy_prefix_cost(benchmark, ws):
    """The greedy selector including its prefix evaluations."""
    bench = bench_for("ws", ws)
    metrics = run_once(benchmark, measure_selection, bench, "approx")
    benchmark.extra_info["combinations_scored"] = metrics.combinations_scored


@pytest.mark.parametrize("variant", ["mir", "mdir"])
def test_ablation_dir_grouping(benchmark, variant):
    """Text-aware (DIR-style) vs purely spatial leaf grouping: build
    cost, leaf text cohesion, and joint-traversal I/O."""
    from repro.core.joint_topk import joint_traversal
    from repro.index.dirtree import MDIRTree, leaf_cohesion
    from repro.index.irtree import MIRTree
    from repro.storage.iostats import IOCounter
    from repro.storage.pager import PageStore

    dataset = _small_world(seed=11)
    by_id = {o.item_id: o for o in dataset.objects}

    def build():
        if variant == "mir":
            return MIRTree(dataset.objects, dataset.relevance, fanout=16)
        return MDIRTree(dataset.objects, dataset.relevance, fanout=16, beta=0.3)

    tree = benchmark.pedantic(build, rounds=1, iterations=1)
    counter = IOCounter()
    joint_traversal(tree, dataset, 10, store=PageStore(counter=counter))
    benchmark.extra_info["leaf_cohesion"] = round(leaf_cohesion(tree, by_id), 4)
    benchmark.extra_info["traversal_io"] = counter.total
