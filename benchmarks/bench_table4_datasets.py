"""Table 4: dataset properties of the two synthetic collections.

Benchmarks generation + indexing cost and records the Table 4 rows in
extra_info (the report prints them as the paper lays them out).
"""

import pytest

from repro import Dataset, MaxBRSTkNNEngine
from repro.datagen import flickr_like, generate_users, yelp_like


def _build(kind: str):
    if kind == "flickr":
        objects, vocab = flickr_like(num_objects=1500, seed=0)
    else:
        objects, vocab = yelp_like(num_objects=250, seed=0)
    workload = generate_users(objects, num_users=150, seed=0)
    dataset = Dataset(objects, workload.users, relevance="LM", vocabulary=vocab)
    MaxBRSTkNNEngine(dataset)
    return dataset


@pytest.mark.parametrize("kind", ["flickr", "yelp"])
def test_table4_dataset_build(benchmark, kind):
    dataset = benchmark.pedantic(_build, args=(kind,), rounds=1, iterations=1)
    for name, value in dataset.stats().rows():
        benchmark.extra_info[name] = value
