"""Multi-host scatter over TCP: per-host payload vs host count.

Not a paper figure — this benchmarks the socket transport
(:mod:`repro.serve.transport` + :mod:`repro.serve.shardhost`).  It
spawns N real ``repro shard-host`` processes on localhost, each
rebuilding the workload from the same spec, connects a coordinator
:class:`~repro.serve.ShardedEngine` over TCP, and answers a fixed
query pool in flush-sized batches.  For each host count it reports,
from the flush reports and the registry's wire counters:

* **per-shard refine dispatch bytes** — with the arena codec these are
  ~100-byte ``ArenaRef`` names per shard, near-constant in the host
  count (that flatness is the PR-9 payload win, reported as context);
* **per-host wire bytes** (both directions / host count, from the
  socket clients' ledgers, headers included) — the quantity that must
  scale ~|U|/N: each host computes and gathers back results for only
  its user partition, so doubling the hosts roughly halves the bytes
  any one host moves;
* **flush wall-time** end to end.

Then a **kill-one-host** pass: one shard-host process is SIGKILLed
between flushes and the next flush must complete via re-scatter to the
survivors — ``worker_deaths``/``retries`` counters prove the path, and
``degraded == 0`` proves no in-process fallback was needed.

Results must be identical to a fresh sequential engine everywhere
(the PR-3 bitwise convention).  The acceptance gate — full runs only —
is per-host wire bytes at 4 hosts ≤ 0.75x the 2-host figure (ideal is
0.5x; the slack absorbs per-connection framing constants).

Run::

    python benchmarks/bench_multihost.py              # full sweep
    python benchmarks/bench_multihost.py --tiny       # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro import EngineConfig, MaxBRSTkNNEngine, QueryOptions  # noqa: E402
from repro.datagen import query_pool  # noqa: E402
from repro.serve import RetryPolicy, ShardedEngine, WorkloadSpec  # noqa: E402
from repro.serve.shardhost import make_workload  # noqa: E402
from repro.storage.shm import arena_segments  # noqa: E402


def spawn_host(spec: WorkloadSpec, num_shards: int, timeout_s: float = 120.0):
    """One ``repro shard-host`` process; returns ``(proc, port)``."""
    cmd = [
        sys.executable, "-m", "repro", "shard-host",
        "--listen", "127.0.0.1:0", "--shards", str(num_shards),
        *spec.cli_args(),
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [sys.path[0], env.get("PYTHONPATH", "")])
    )
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, env=env,
    )
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError("shard-host exited before listening")
        if line.startswith("SHARDHOST LISTENING"):
            return proc, int(line.split()[-1])
    proc.kill()
    raise RuntimeError("shard-host never reported its port")


def stop_hosts(procs):
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()


def chunked(items, size):
    for i in range(0, len(items), size):
        yield items[i:i + size]


def run_hosts(dataset, queries, options, spec, *, num_hosts, batch_size,
              kill_one=False):
    """One socket pass over ``num_hosts`` fresh shard-host processes."""
    procs, ports = [], []
    engine = ShardedEngine(
        dataset, EngineConfig(fanout=4, num_shards=num_hosts, use_shm=True)
    )
    try:
        for _ in range(num_hosts):
            proc, port = spawn_host(spec, num_hosts)
            procs.append(proc)
            ports.append(port)
        engine.connect_hosts(
            [f"127.0.0.1:{p}" for p in ports], retry=RetryPolicy(max_retries=2)
        )
        results = []
        refine_out = 0
        flushes = 0
        t0 = time.perf_counter()
        batches = list(chunked(queries, batch_size))
        for i, chunk in enumerate(batches):
            if kill_one and i == 1:
                procs[0].send_signal(signal.SIGKILL)
                procs[0].wait(timeout=10)
            results.extend(engine.query_batch(chunk, options))
            report = engine.last_flush_report
            refine_out += sum(
                s.payload_bytes_out for s in report.stages
                if s.stage == "refine"
            )
            flushes += 1
        elapsed = time.perf_counter() - t0
        wire_out, wire_in = engine._registry.bytes_totals()
        counters = dict(engine.fault_counters())
        degraded = engine.last_flush_report.degraded_partitions
    finally:
        engine.close_hosts()
        stop_hosts(procs)
    return {
        "results": results,
        "refine_out_bytes": refine_out,
        "per_shard_refine_bytes": refine_out / num_hosts,
        "per_host_wire_bytes": (wire_out + wire_in) / num_hosts,
        "wire_bytes_out": wire_out,
        "wire_bytes_in": wire_in,
        "flushes": flushes,
        "total_ms": 1000 * elapsed,
        "counters": counters,
        "degraded_partitions": degraded,
    }


def identical(a, b):
    return len(a) == len(b) and all(
        x.location == y.location
        and x.keywords == y.keywords
        and x.brstknn == y.brstknn
        for x, y in zip(a, b)
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=2000)
    parser.add_argument("--users", type=int, default=400)
    parser.add_argument("--locations", type=int, default=10)
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--hosts", type=int, nargs="+", default=[2, 4])
    parser.add_argument("--queries", type=int, default=24)
    parser.add_argument("--batch-size", type=int, default=8,
                        help="queries per flush (the server's micro-batch)")
    parser.add_argument("--tiny", action="store_true",
                        help="smoke-test scale for CI")
    parser.add_argument("--json", metavar="PATH", default=None)
    args = parser.parse_args(argv)

    if args.tiny:
        args.objects, args.users, args.locations = 400, 80, 5
        args.queries, args.batch_size = 8, 4
        args.hosts = [h for h in args.hosts if h <= 2] or [2]

    spec = WorkloadSpec(
        objects=args.objects, users=args.users, locations=args.locations,
        seed=args.seed,
    )
    dataset, workload = make_workload(spec)
    queries = query_pool(
        workload, args.queries, num_locations=spec.locations,
        k=args.k, seed=spec.seed, seed_stride=101,
    )
    options = QueryOptions(method="approx", mode="joint", backend="python")

    print(f"workload: objects={spec.objects} users={spec.users} "
          f"queries={len(queries)} batch={args.batch_size} "
          f"hosts={args.hosts} (cpus={os.cpu_count()})", flush=True)

    reference = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4))
    expected = [reference.query(q, options) for q in queries]

    print(f"\n{'hosts':>5} {'refine KiB/shard':>17} {'wire out KiB':>13} "
          f"{'wire in KiB':>12} {'KiB/host':>9} {'total ms':>9}")
    rows = []
    ok = True
    per_host_at = {}
    for num_hosts in args.hosts:
        run = run_hosts(
            dataset, queries, options, spec,
            num_hosts=num_hosts, batch_size=args.batch_size,
        )
        same = identical(run["results"], expected)
        if not same:
            print(f"EQUIVALENCE FAILURE: hosts={num_hosts}: socket results "
                  f"differ from the sequential engine")
            ok = False
        if run["counters"].get("worker_deaths") or run["degraded_partitions"]:
            print(f"FAULT FAILURE: hosts={num_hosts}: clean run saw "
                  f"{run['counters']} degraded={run['degraded_partitions']}")
            ok = False
        per_host_at[num_hosts] = run["per_host_wire_bytes"]
        print(f"{num_hosts:>5} {run['per_shard_refine_bytes'] / 1024:>17.1f} "
              f"{run['wire_bytes_out'] / 1024:>13.1f} "
              f"{run['wire_bytes_in'] / 1024:>12.1f} "
              f"{run['per_host_wire_bytes'] / 1024:>9.1f} "
              f"{run['total_ms']:>9.1f}")
        rows.append({
            "hosts": num_hosts,
            "refine_out_bytes": run["refine_out_bytes"],
            "per_shard_refine_bytes": run["per_shard_refine_bytes"],
            "per_host_wire_bytes": run["per_host_wire_bytes"],
            "wire_bytes_out": run["wire_bytes_out"],
            "wire_bytes_in": run["wire_bytes_in"],
            "flushes": run["flushes"],
            "total_ms": run["total_ms"],
            "identical_results": same,
        })

    # Kill-one-host: the re-scatter path, with counters to prove it.
    kill_hosts = max(args.hosts)
    run = run_hosts(
        dataset, queries, options, spec,
        num_hosts=kill_hosts, batch_size=args.batch_size, kill_one=True,
    )
    same = identical(run["results"], expected)
    deaths = run["counters"].get("worker_deaths", 0)
    retries = run["counters"].get("retries", 0)
    print(f"\nkill-one-host @ {kill_hosts} hosts: worker_deaths={deaths} "
          f"retries={retries} degraded={run['degraded_partitions']} "
          f"identical={same}")
    if not same:
        print("EQUIVALENCE FAILURE: kill-one-host results differ")
        ok = False
    if deaths < 1 or retries < 1:
        print("FAULT FAILURE: kill-one-host run never exercised re-scatter")
        ok = False
    if kill_hosts > 1 and run["degraded_partitions"]:
        print("FAULT FAILURE: survivors should have absorbed the dead "
              "host's shard without in-process degrade")
        ok = False
    kill_row = {
        "hosts": kill_hosts,
        "worker_deaths": deaths,
        "retries": retries,
        "degraded_partitions": run["degraded_partitions"],
        "identical_results": same,
    }

    leaked = arena_segments()
    if leaked:
        print(f"LEAK FAILURE: /dev/shm still holds {leaked}")
        ok = False

    if args.json:
        payload = {
            "benchmark": "multihost_socket_scatter",
            "objects": spec.objects,
            "users": spec.users,
            "queries": len(queries),
            "batch_size": args.batch_size,
            "cpus": os.cpu_count(),
            "sweep": rows,
            "kill_one_host": kill_row,
            "identical_results": ok,
            "leaked_segments": leaked,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")

    if not ok:
        return 1
    print(f"\nequivalence check: socket transport == sequential engine on "
          f"{len(queries)} queries x {len(args.hosts)} host counts + "
          f"kill-one-host; /dev/shm clean")
    if not args.tiny and 2 in per_host_at and 4 in per_host_at:
        ratio = per_host_at[4] / max(1.0, per_host_at[2])
        if ratio > 0.75:
            print(f"ACCEPTANCE FAILURE: per-host wire bytes at 4 hosts "
                  f"is {ratio:.2f}x the 2-host figure (need <= 0.75x, "
                  f"ideal 0.5x)")
            return 1
        print(f"scaling: per-host wire bytes 4-host/2-host = "
              f"{ratio:.2f}x (~|U|/N)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
