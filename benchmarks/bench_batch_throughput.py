"""Batch query engine throughput: queries/sec vs batch size.

Not a paper figure — this benchmarks the batch subsystem added on top
of the reproduction.  For each batch size ``b`` the engine answers the
first ``b`` of a fixed pool of generated queries through
``engine.query_batch`` with a *cold* shared-top-k cache, so every batch
pays the query-independent top-k phase exactly once; batch size 1 is
therefore the sequential ``engine.query`` cost.  The headline number is
the speedup of batch-64 queries/sec over batch-1 queries/sec (expected
well above 3x: the shared phase dominates a single query).

Run::

    python benchmarks/bench_batch_throughput.py            # full sweep
    python benchmarks/bench_batch_throughput.py --tiny     # CI smoke

The script exits non-zero if any batch produces results that differ
from sequential python-backend queries (a built-in equivalence check).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro import MaxBRSTkNNEngine, QueryOptions  # noqa: E402
from repro.bench.harness import build_workbench  # noqa: E402
from repro.bench.params import DEFAULTS  # noqa: E402
from repro.core.kernels import HAS_NUMPY  # noqa: E402
from repro.datagen.users import query_pool  # noqa: E402


def make_queries(workload, config, count: int):
    """A pool of distinct queries (fresh candidate locations each)."""
    return query_pool(
        workload, count, num_locations=config.num_locations, ws=config.ws,
        k=config.k, seed=config.seed, seed_stride=101,
    )


def time_batch(engine, queries, backend, workers, method, repeats):
    """Best-of-N wall time for one cold batch call."""
    best = float("inf")
    results = None
    for _ in range(repeats):
        engine.clear_topk_cache()
        t0 = time.perf_counter()
        results = engine.query_batch(
            queries,
            QueryOptions(method=method, backend=backend, workers=workers),
        )
        best = min(best, time.perf_counter() - t0)
    return best, results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=DEFAULTS.num_objects)
    parser.add_argument("--users", type=int, default=DEFAULTS.num_users)
    parser.add_argument("--locations", type=int, default=DEFAULTS.num_locations)
    parser.add_argument("--measure", default=DEFAULTS.measure)
    parser.add_argument("--k", type=int, default=DEFAULTS.k)
    parser.add_argument("--seed", type=int, default=DEFAULTS.seed)
    parser.add_argument("--method", choices=["approx", "exact"], default="approx")
    parser.add_argument(
        "--backend",
        choices=["python", "numpy", "auto"],
        default="auto",
        help="kernels used by the batched runs (batch-1 included)",
    )
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--batch-sizes",
        type=int,
        nargs="+",
        default=[1, 2, 4, 8, 16, 32, 64, 128, 256],
    )
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="smoke-test scale for CI (small dataset, batch sizes 1/4/16)",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the batch-vs-sequential equivalence check",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write machine-readable results to PATH (CI uploads these "
        "as artifacts to track the perf trajectory across PRs)",
    )
    args = parser.parse_args(argv)

    config = DEFAULTS.with_(
        num_objects=args.objects,
        num_users=args.users,
        num_locations=args.locations,
        measure=args.measure,
        k=args.k,
        seed=args.seed,
        backend=args.backend,
    )
    if args.tiny:
        config = config.with_(num_objects=300, num_users=40, num_locations=5)
        if args.batch_sizes != parser.get_default("batch_sizes"):
            print("note: --tiny overrides --batch-sizes with [1, 4, 16]")
        args.batch_sizes = [1, 4, 16]
        args.repeats = 1

    print(f"dataset: {config.label()}", flush=True)
    bench = build_workbench(config, cached=False)
    engine = MaxBRSTkNNEngine(bench.dataset, fanout=config.fanout)
    # The workbench query object is regenerated per query below.
    from repro.datagen.users import generate_users
    workload = generate_users(
        bench.dataset.objects,
        num_users=config.num_users,
        keywords_per_user=config.ul,
        unique_keywords=config.uw,
        area_side=config.area,
        seed=config.seed,
    )
    queries = make_queries(workload, config, max(args.batch_sizes))
    backend = args.backend if HAS_NUMPY or args.backend == "python" else "python"

    rows = []
    for size in args.batch_sizes:
        elapsed, results = time_batch(
            engine, queries[:size], backend, args.workers, args.method, args.repeats
        )
        qps = size / elapsed if elapsed > 0 else float("inf")
        rows.append((size, elapsed, qps, results))
        print(
            f"batch {size:>4}: {1000 * elapsed:8.1f} ms total  "
            f"{1000 * elapsed / size:7.2f} ms/query  {qps:8.2f} queries/sec",
            flush=True,
        )

    base_qps = rows[0][2]
    print(f"\nspeedup vs batch size {rows[0][0]}:")
    for size, _, qps, _ in rows:
        print(f"batch {size:>4}: {qps / base_qps:6.2f}x")

    if args.json:
        payload = {
            "benchmark": "batch_throughput",
            "dataset": config.label(),
            "backend": backend,
            "method": args.method,
            "workers": args.workers,
            "rows": [
                {
                    "batch_size": size,
                    "total_s": elapsed,
                    "queries_per_sec": qps,
                    "speedup_vs_batch_1": qps / base_qps,
                }
                for size, elapsed, qps, _ in rows
            ],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")

    if not args.no_verify:
        largest = rows[-1]
        engine.clear_topk_cache()
        mismatches = 0
        for q, batched in zip(queries[: largest[0]], largest[3]):
            solo = engine.query(q, QueryOptions(method=args.method, backend="python"))
            if (
                solo.location != batched.location
                or solo.keywords != batched.keywords
                or solo.brstknn != batched.brstknn
            ):
                mismatches += 1
        if mismatches:
            print(f"EQUIVALENCE FAILURE: {mismatches} mismatching queries")
            return 1
        print(f"equivalence check: batch == sequential on {largest[0]} queries")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
