"""Figure 13: effect of varying |O| (number of objects).

Paper shape: both pipelines' costs grow with |O|, but larger
collections also sharpen the k-th thresholds, so candidate pruning
improves and the exact/approx selection cost grows slowly.
"""

import pytest

from repro.bench.harness import (
    measure_selection,
    measure_topk_baseline,
    measure_topk_joint,
)

from conftest import bench_for, run_once

OS = [1000, 4000, 8000]


@pytest.mark.parametrize("num_objects", OS)
def test_fig13ab_topk_baseline(benchmark, num_objects):
    bench = bench_for("num_objects", num_objects)
    metrics = run_once(benchmark, measure_topk_baseline, bench)
    benchmark.extra_info["mrpu_ms"] = metrics.mrpu_ms
    benchmark.extra_info["miocpu"] = metrics.miocpu


@pytest.mark.parametrize("num_objects", OS)
def test_fig13ab_topk_joint(benchmark, num_objects):
    bench = bench_for("num_objects", num_objects)
    metrics = run_once(benchmark, measure_topk_joint, bench)
    benchmark.extra_info["mrpu_ms"] = metrics.mrpu_ms
    benchmark.extra_info["miocpu"] = metrics.miocpu


@pytest.mark.parametrize("num_objects", [1000, 8000])
@pytest.mark.parametrize("method", ["exact", "approx"])
def test_fig13c_selection(benchmark, num_objects, method):
    bench = bench_for("num_objects", num_objects)
    run_once(benchmark, measure_selection, bench, method)


@pytest.mark.parametrize("num_objects", OS)
def test_fig13d_approximation_ratio(benchmark, num_objects):
    bench = bench_for("num_objects", num_objects)

    def both():
        exact = measure_selection(bench, "exact")
        approx = measure_selection(bench, "approx")
        return 1.0 if exact.cardinality == 0 else approx.cardinality / exact.cardinality

    ratio = run_once(benchmark, both)
    benchmark.extra_info["approximation_ratio"] = ratio
    assert 0.0 <= ratio <= 1.0
