"""Cross-flush result cache under Zipf-repeated query traffic.

Not a paper figure — this benchmarks the PR 6 serving-layer result
cache (:mod:`repro.core.cache`).  Real serving traffic repeats itself:
a small set of hot queries dominates the stream.  This harness samples
a stream of ``--stream`` queries from a pool of ``--pool`` distinct
queries with Zipf rank weights (``1 / (rank + 1) ** s``), then serves
the same stream three ways through :class:`MaxBRSTkNNServer`:

* **uncached** — every occurrence pays a full flush (the PR 5 serving
  model);
* **cached, cold** — first occurrences miss and populate the cache,
  repeats hit (the realistic steady state);
* **cached, hot** — a second pass over the stream against the warm
  cache, isolating pure cache-hit serving throughput.

Every served result — cached and fresh alike — is compared against a
reference computed once per distinct query on an independent
sequential python-backend engine, so a cache keying bug cannot pass.

Run::

    python benchmarks/bench_repeat_traffic.py            # full run
    python benchmarks/bench_repeat_traffic.py --tiny     # CI smoke

Exits non-zero if any served result differs from the sequential
reference, if the hot pass hit rate falls below ``--min-hit-rate``
(the warm cache must answer every repeat), or — full runs only — if
cache-hot serving fails the >= 5x queries/sec acceptance bar over
uncached serving.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro import MaxBRSTkNNEngine, QueryOptions  # noqa: E402
from repro.bench.harness import build_workbench  # noqa: E402
from repro.bench.metrics import percentile  # noqa: E402
from repro.bench.params import DEFAULTS  # noqa: E402
from repro.core.config import CachePolicy  # noqa: E402
from repro.datagen.users import generate_users, query_pool  # noqa: E402
from repro.serve import MaxBRSTkNNServer, ServerConfig  # noqa: E402


def zipf_stream(pool_size: int, length: int, s: float, seed: int):
    """Indices into the pool, rank-weighted ``1 / (rank + 1) ** s``."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** s for rank in range(pool_size)]
    # Every distinct query appears at least once so the identity check
    # exercises the whole pool; the rest of the stream is Zipf draws.
    head = list(range(pool_size))
    tail = rng.choices(range(pool_size), weights=weights, k=max(0, length - pool_size))
    stream = head + tail
    rng.shuffle(stream)
    return stream[:length]


def run_pass(server_args, queries, concurrency):
    """Serve ``queries`` through closed-loop clients on a fresh server.

    ``server_args`` is ``(engine, config)`` — or an existing server to
    reuse (keeping its warm cache across passes).
    """
    latencies = []
    results = [None] * len(queries)
    chunks = [list(enumerate(queries))[i::concurrency] for i in range(concurrency)]

    async def client(server, chunk):
        for idx, query in chunk:
            t0 = time.perf_counter()
            results[idx] = await server.submit(query)
            latencies.append(time.perf_counter() - t0)

    async def main():
        engine, config = server_args
        async with MaxBRSTkNNServer(engine, config) as server:
            t0 = time.perf_counter()
            await asyncio.gather(*(client(server, chunk) for chunk in chunks if chunk))
            return time.perf_counter() - t0, server.stats, server.stats_snapshot()

    elapsed, stats, snapshot = asyncio.run(main())
    return elapsed, sorted(latencies), stats, snapshot, results


def run_cached_passes(engine, config, stream_queries, concurrency):
    """Cold + hot cached passes over one server (the cache persists)."""
    outputs = []

    async def main():
        async with MaxBRSTkNNServer(engine, config) as server:
            for label in ("cached cold", "cached hot"):
                hits0 = server.stats.cache_hits
                misses0 = server.stats.cache_misses
                latencies = []
                results = [None] * len(stream_queries)
                chunks = [
                    list(enumerate(stream_queries))[i::concurrency]
                    for i in range(concurrency)
                ]

                async def client(chunk):
                    for idx, query in chunk:
                        t0 = time.perf_counter()
                        results[idx] = await server.submit(query)
                        latencies.append(time.perf_counter() - t0)

                t0 = time.perf_counter()
                await asyncio.gather(*(client(chunk) for chunk in chunks if chunk))
                elapsed = time.perf_counter() - t0
                hits = server.stats.cache_hits - hits0
                misses = server.stats.cache_misses - misses0
                outputs.append(
                    (label, elapsed, sorted(latencies), hits, misses, results)
                )
            return server.stats_snapshot()

    snapshot = asyncio.run(main())
    return outputs, snapshot


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=DEFAULTS.num_objects)
    parser.add_argument("--users", type=int, default=DEFAULTS.num_users)
    parser.add_argument("--locations", type=int, default=DEFAULTS.num_locations)
    parser.add_argument("--k", type=int, default=DEFAULTS.k)
    parser.add_argument("--seed", type=int, default=DEFAULTS.seed)
    parser.add_argument("--backend", choices=["python", "numpy", "auto"],
                        default="auto")
    parser.add_argument("--pool", type=int, default=24,
                        help="distinct queries in the pool")
    parser.add_argument("--stream", type=int, default=192,
                        help="total stream length (Zipf draws from the pool)")
    parser.add_argument("--zipf-s", type=float, default=1.1,
                        help="Zipf skew exponent (higher = hotter head)")
    parser.add_argument("--concurrency", type=int, default=16)
    parser.add_argument("--min-hit-rate", type=float, default=0.99,
                        help="required hit rate on the cache-hot pass")
    parser.add_argument("--tiny", action="store_true",
                        help="smoke-test scale for CI")
    parser.add_argument("--no-verify", action="store_true")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write machine-readable results to PATH "
                             "(CI uploads these as artifacts)")
    args = parser.parse_args(argv)

    config = DEFAULTS.with_(
        num_objects=args.objects,
        num_users=args.users,
        num_locations=args.locations,
        k=args.k,
        seed=args.seed,
        backend=args.backend,
    )
    if args.tiny:
        config = config.with_(num_objects=300, num_users=40, num_locations=5)
        args.pool = 8
        args.stream = 48
        args.concurrency = 8

    print(f"dataset: {config.label()}  "
          f"(pool={args.pool}, stream={args.stream}, zipf_s={args.zipf_s}, "
          f"concurrency={args.concurrency})", flush=True)
    bench = build_workbench(config, cached=False)
    engine = MaxBRSTkNNEngine(bench.dataset, fanout=config.fanout)
    workload = generate_users(
        bench.dataset.objects,
        num_users=config.num_users,
        keywords_per_user=config.ul,
        unique_keywords=config.uw,
        area_side=config.area,
        seed=config.seed,
    )
    pool = query_pool(
        workload, args.pool, num_locations=config.num_locations, ws=config.ws,
        k=config.k, seed=config.seed, seed_stride=101,
    )
    stream = zipf_stream(args.pool, args.stream, args.zipf_s, args.seed)
    stream_queries = [pool[i] for i in stream]
    options = QueryOptions(backend=args.backend)

    # Reference answers, one per *distinct* query, from an independent
    # sequential python-backend engine (no shared pools or caches).
    reference = None
    if not args.no_verify:
        ref_engine = MaxBRSTkNNEngine(
            bench.dataset, fanout=config.fanout, object_tree=engine.object_tree
        )
        ref_options = QueryOptions(backend="python")
        reference = [ref_engine.query(q, ref_options) for q in pool]

    def check(label, results):
        if reference is None:
            return 0
        mismatches = sum(
            1
            for idx, served in zip(stream, results)
            if (
                served.location != reference[idx].location
                or served.keywords != reference[idx].keywords
                or served.brstknn != reference[idx].brstknn
            )
        )
        if mismatches:
            print(f"EQUIVALENCE FAILURE [{label}]: {mismatches} of "
                  f"{len(results)} served results differ from sequential")
        return mismatches

    print(f"\n{'pass':<18} {'q/s':>9} {'p50 ms':>8} {'p95 ms':>8} "
          f"{'hits':>6} {'misses':>7} {'hit rate':>9}")

    rows = []
    failures = 0

    engine.clear_topk_cache()
    base_config = ServerConfig(options=options)
    elapsed, lats, _, _, results = run_pass((engine, base_config), stream_queries,
                                            args.concurrency)
    uncached_qps = len(stream_queries) / elapsed
    failures += check("uncached", results)
    rows.append({"pass": "uncached", "queries_per_sec": uncached_qps,
                 "p50_ms": 1000 * percentile(lats, 0.5),
                 "p95_ms": 1000 * percentile(lats, 0.95),
                 "cache_hits": 0, "cache_misses": len(stream_queries),
                 "hit_rate": 0.0})
    print(f"{'uncached':<18} {uncached_qps:>9.1f} "
          f"{1000 * percentile(lats, 0.5):>8.1f} "
          f"{1000 * percentile(lats, 0.95):>8.1f} "
          f"{0:>6} {len(stream_queries):>7} {'—':>9}")

    engine.clear_topk_cache()
    cached_config = ServerConfig(
        options=options, cache=CachePolicy(max_entries=4 * args.pool)
    )
    passes, snapshot = run_cached_passes(
        engine, cached_config, stream_queries, args.concurrency
    )
    hot_qps = 0.0
    hot_hit_rate = 0.0
    for label, elapsed, lats, hits, misses, results in passes:
        qps = len(stream_queries) / elapsed
        hit_rate = hits / (hits + misses) if hits + misses else 0.0
        failures += check(label, results)
        if label == "cached hot":
            hot_qps, hot_hit_rate = qps, hit_rate
        rows.append({"pass": label, "queries_per_sec": qps,
                     "p50_ms": 1000 * percentile(lats, 0.5),
                     "p95_ms": 1000 * percentile(lats, 0.95),
                     "cache_hits": hits, "cache_misses": misses,
                     "hit_rate": hit_rate})
        print(f"{label:<18} {qps:>9.1f} "
              f"{1000 * percentile(lats, 0.5):>8.1f} "
              f"{1000 * percentile(lats, 0.95):>8.1f} "
              f"{hits:>6} {misses:>7} {hit_rate:>9.2%}")

    speedup = hot_qps / uncached_qps if uncached_qps else float("inf")
    print(f"\ncache-hot vs uncached: {speedup:.2f}x queries/sec "
          f"(threshold warm tier: {snapshot.get('cache_threshold_hits', 0)} "
          f"misses at an already-walked k)")

    if args.json:
        payload = {
            "benchmark": "repeat_traffic",
            "dataset": config.label(),
            "pool": args.pool,
            "stream": len(stream_queries),
            "zipf_s": args.zipf_s,
            "concurrency": args.concurrency,
            "passes": rows,
            "hot_hit_rate": hot_hit_rate,
            "hot_speedup_vs_uncached": speedup,
            "cache_threshold_hits": snapshot.get("cache_threshold_hits", 0),
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")

    if failures:
        return 1
    if reference is not None:
        print(f"equivalence check: all 3 passes == sequential on "
              f"{len(stream_queries)}-query stream ({args.pool} distinct)")
    if hot_hit_rate < args.min_hit_rate:
        print(f"ACCEPTANCE FAILURE: hot-pass hit rate {hot_hit_rate:.2%} "
              f"below {args.min_hit_rate:.2%}")
        return 1
    if not args.tiny and speedup < 5.0:
        print("ACCEPTANCE FAILURE: cache-hot speedup below 5x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
