"""Figure 14: the k sweep on the Yelp-like dataset.

Paper statement: all trends are consistent across both datasets; this
module repeats Figure 5's pattern on the long-document collection.
"""

import pytest

from repro.bench.harness import (
    measure_selection,
    measure_topk_baseline,
    measure_topk_joint,
)

from conftest import BENCH_BASE, bench_for, run_once

YELP_BASE = BENCH_BASE.with_(dataset="yelp")
K_VALUES = [1, 10, 50]


@pytest.mark.parametrize("k", K_VALUES)
def test_fig14ab_topk_baseline(benchmark, k):
    bench = bench_for("k", k, YELP_BASE)
    metrics = run_once(benchmark, measure_topk_baseline, bench)
    benchmark.extra_info["mrpu_ms"] = metrics.mrpu_ms
    benchmark.extra_info["miocpu"] = metrics.miocpu


@pytest.mark.parametrize("k", K_VALUES)
def test_fig14ab_topk_joint(benchmark, k):
    bench = bench_for("k", k, YELP_BASE)
    metrics = run_once(benchmark, measure_topk_joint, bench)
    benchmark.extra_info["mrpu_ms"] = metrics.mrpu_ms
    benchmark.extra_info["miocpu"] = metrics.miocpu


@pytest.mark.parametrize("k", [1, 50])
@pytest.mark.parametrize("method", ["exact", "approx"])
def test_fig14c_selection(benchmark, k, method):
    bench = bench_for("k", k, YELP_BASE)
    run_once(benchmark, measure_selection, bench, method)


@pytest.mark.parametrize("k", K_VALUES)
def test_fig14d_approximation_ratio(benchmark, k):
    bench = bench_for("k", k, YELP_BASE)

    def both():
        exact = measure_selection(bench, "exact")
        approx = measure_selection(bench, "approx")
        return 1.0 if exact.cardinality == 0 else approx.cardinality / exact.cardinality

    ratio = run_once(benchmark, both)
    benchmark.extra_info["approximation_ratio"] = ratio
    assert 0.0 <= ratio <= 1.0
