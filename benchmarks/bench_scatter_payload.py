"""Scatter-payload bytes: pickle pipe vs zero-copy arena codec.

Not a paper figure — this benchmarks the shared-memory storage tier
(:mod:`repro.storage.shm` + :mod:`repro.core.payload`).  A fixed query
pool is answered in flush-sized batches through pooled sharded engines
with shards ∈ ``--shards`` (default 1, 2, 4), once with the plain
pickle transport (``use_shm=False``) and once with the arena codec
(``use_shm=True``).  For each configuration it reports, from the
engines' flush reports:

* **per-flush scatter payload bytes** (the dispatch direction — what
  the gate measures), split into the *cold* first flush — where the
  pickle path re-serializes the full traversal pool per shard while
  the codec ships ~100-byte ``ArenaRef`` names — and the *warm*
  remainder, where the codec's delta memo re-sends only references
  for unchanged threshold maps;
* **gather bytes** (worker results back up the pipe) — identical for
  both transports, reported for context;
* **dispatch wall-time**: the summed scatter-stage wall clock.

Results must be identical between the two transports (the PR-3
bitwise convention); the acceptance gate — full runs on sweeps that
reach 4 shards — is a ≥ 10x cold-flush payload reduction at 4 shards.

Run::

    python benchmarks/bench_scatter_payload.py              # full sweep
    python benchmarks/bench_scatter_payload.py --tiny --shards 2  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro import EngineConfig, QueryOptions  # noqa: E402
from repro.bench.harness import build_workbench  # noqa: E402
from repro.bench.params import DEFAULTS  # noqa: E402
from repro.datagen.users import generate_users, query_pool  # noqa: E402
from repro.serve import make_engine  # noqa: E402
from repro.storage.shm import arena_segments  # noqa: E402


def chunked(items, size):
    for i in range(0, len(items), size):
        yield items[i:i + size]


def run_path(dataset, queries, options, *, num_shards, use_shm,
             pool_workers, batch_size):
    """One transport pass: fresh engine, pooled flushes, byte ledger."""
    engine = make_engine(
        dataset, EngineConfig(fanout=DEFAULTS.fanout, num_shards=num_shards,
                              use_shm=use_shm),
    )
    pool = None
    if num_shards > 1:
        engine.start_pools(pool_workers)
        close = engine.close_pools
    else:
        # The single-engine pooled path, wired the way the server does it.
        from repro.serve import PersistentWorkerPool

        arena = engine.ensure_arena()
        pool = PersistentWorkerPool(
            dataset, pool_workers,
            arena_name=arena.name if arena is not None else None,
        )

        def close():
            pool.close()
            engine.close_arena()

    out_bytes = []
    in_bytes = []
    scatter_s = 0.0
    results = []
    try:
        t0 = time.perf_counter()
        for chunk in chunked(queries, batch_size):
            results.extend(engine.query_batch(chunk, options, pool=pool))
            report = engine.last_flush_report
            out_bytes.append(report.payload_bytes_out)
            in_bytes.append(report.payload_bytes_in)
            scatter_s += sum(
                s.time_s for s in report.stages if s.scatter_width > 1
                or s.payload_bytes_out or s.payload_bytes_in
            )
        elapsed = time.perf_counter() - t0
        codec = engine.payload_codec
        codec_stats = codec.stats_snapshot() if codec is not None else None
    finally:
        close()
    return {
        "results": results,
        "out_bytes": out_bytes,
        "cold_bytes": out_bytes[0] if out_bytes else 0,
        "warm_bytes": out_bytes[1:],
        "gather_bytes": sum(in_bytes),
        "scatter_ms": 1000 * scatter_s,
        "total_ms": 1000 * elapsed,
        "codec": codec_stats,
    }


def identical(a, b):
    return all(
        x.location == y.location
        and x.keywords == y.keywords
        and x.brstknn == y.brstknn
        for x, y in zip(a, b)
    ) and len(a) == len(b)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=DEFAULTS.num_objects)
    parser.add_argument("--users", type=int, default=800)
    parser.add_argument("--locations", type=int, default=DEFAULTS.num_locations)
    parser.add_argument("--k", type=int, default=DEFAULTS.k)
    parser.add_argument("--seed", type=int, default=DEFAULTS.seed)
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--pool-workers", type=int, default=1)
    parser.add_argument("--queries", type=int, default=32)
    parser.add_argument("--batch-size", type=int, default=16,
                        help="queries per flush (the server's micro-batch)")
    parser.add_argument("--tiny", action="store_true",
                        help="smoke-test scale for CI")
    parser.add_argument("--json", metavar="PATH", default=None)
    args = parser.parse_args(argv)

    config = DEFAULTS.with_(
        num_objects=args.objects, num_users=args.users,
        num_locations=args.locations, k=args.k, seed=args.seed,
    )
    if args.tiny:
        config = config.with_(num_objects=300, num_users=60, num_locations=5, k=3)
        args.queries = 16
        args.batch_size = 8

    print(f"dataset: {config.label()}  (queries={args.queries}, "
          f"batch={args.batch_size}, pool_workers/shard={args.pool_workers}, "
          f"cpus={os.cpu_count()})", flush=True)
    bench = build_workbench(config, cached=False)
    workload = generate_users(
        bench.dataset.objects, num_users=config.num_users,
        keywords_per_user=config.ul, unique_keywords=config.uw,
        area_side=config.area, seed=config.seed,
    )
    queries = query_pool(
        workload, args.queries, num_locations=config.num_locations,
        ws=config.ws, k=config.k, seed=config.seed, seed_stride=101,
    )
    options = QueryOptions()

    print(f"\n{'configuration':<16} {'cold KiB':>10} {'warm KiB/fl':>12} "
          f"{'reduction':>10} {'gather KiB':>11} {'scatter ms':>11}")
    rows = []
    ok = True
    reduction_at = {}
    for num_shards in args.shards:
        pickle_run = run_path(
            bench.dataset, queries, options, num_shards=num_shards,
            use_shm=False, pool_workers=args.pool_workers,
            batch_size=args.batch_size,
        )
        codec_run = run_path(
            bench.dataset, queries, options, num_shards=num_shards,
            use_shm=True, pool_workers=args.pool_workers,
            batch_size=args.batch_size,
        )
        same = identical(pickle_run["results"], codec_run["results"])
        if not same:
            print(f"EQUIVALENCE FAILURE: shards={num_shards}: results differ "
                  f"between pickle and codec transports")
            ok = False
        cold_reduction = (
            pickle_run["cold_bytes"] / codec_run["cold_bytes"]
            if codec_run["cold_bytes"] else float("inf")
        )
        reduction_at[num_shards] = cold_reduction
        warm_p = sum(pickle_run["warm_bytes"]) / max(1, len(pickle_run["warm_bytes"]))
        warm_c = sum(codec_run["warm_bytes"]) / max(1, len(codec_run["warm_bytes"]))
        for label, run in (("pickle", pickle_run), ("codec", codec_run)):
            warm = warm_p if label == "pickle" else warm_c
            print(f"shards={num_shards} {label:<7} "
                  f"{run['cold_bytes'] / 1024:>10.1f} {warm / 1024:>12.1f} "
                  f"{(f'{cold_reduction:.1f}x' if label == 'codec' else ''):>10} "
                  f"{run['gather_bytes'] / 1024:>11.1f} "
                  f"{run['scatter_ms']:>11.1f}")
        rows.append({
            "shards": num_shards,
            "pickle_cold_bytes": pickle_run["cold_bytes"],
            "codec_cold_bytes": codec_run["cold_bytes"],
            "pickle_warm_bytes_per_flush": warm_p,
            "codec_warm_bytes_per_flush": warm_c,
            "cold_reduction_x": cold_reduction,
            "pickle_gather_bytes": pickle_run["gather_bytes"],
            "codec_gather_bytes": codec_run["gather_bytes"],
            "pickle_scatter_ms": pickle_run["scatter_ms"],
            "codec_scatter_ms": codec_run["scatter_ms"],
            "codec_stats": codec_run["codec"],
            "identical_results": same,
        })

    leaked = arena_segments()
    if leaked:
        print(f"LEAK FAILURE: /dev/shm still holds {leaked}")
        ok = False

    if args.json:
        payload = {
            "benchmark": "scatter_payload_codec",
            "dataset": config.label(),
            "queries": len(queries),
            "batch_size": args.batch_size,
            "pool_workers_per_shard": args.pool_workers,
            "cpus": os.cpu_count(),
            "sweep": rows,
            "identical_results": ok,
            "leaked_segments": leaked,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")

    if not ok:
        return 1
    print(f"\nequivalence check: codec == pickle transport on "
          f"{len(queries)} queries x {len(args.shards)} shard counts; "
          f"/dev/shm clean")
    if not args.tiny and 4 in reduction_at and reduction_at[4] < 10.0:
        print(f"ACCEPTANCE FAILURE: cold-flush payload reduction at "
              f"4 shards is {reduction_at[4]:.1f}x < 10x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
