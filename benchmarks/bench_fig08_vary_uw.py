"""Figure 8: effect of varying UW (unique user keywords = |W|).

Paper shape: low UW means heavy keyword sharing, which is where the
joint algorithm's shared I/O helps most; selection runtimes grow with
UW for both exact and approx (more candidate combinations / lists).
"""

import pytest

from repro.bench.harness import (
    measure_selection,
    measure_topk_baseline,
    measure_topk_joint,
)

from conftest import bench_for, run_once

UWS = [5, 20, 40]


@pytest.mark.parametrize("uw", UWS)
def test_fig8ab_topk_baseline(benchmark, uw):
    bench = bench_for("uw", uw)
    metrics = run_once(benchmark, measure_topk_baseline, bench)
    benchmark.extra_info["mrpu_ms"] = metrics.mrpu_ms
    benchmark.extra_info["miocpu"] = metrics.miocpu


@pytest.mark.parametrize("uw", UWS)
def test_fig8ab_topk_joint(benchmark, uw):
    bench = bench_for("uw", uw)
    metrics = run_once(benchmark, measure_topk_joint, bench)
    benchmark.extra_info["mrpu_ms"] = metrics.mrpu_ms
    benchmark.extra_info["miocpu"] = metrics.miocpu


@pytest.mark.parametrize("uw", [5, 40])
@pytest.mark.parametrize("method", ["baseline", "exact", "approx"])
def test_fig8c_selection(benchmark, uw, method):
    bench = bench_for("uw", uw)
    run_once(benchmark, measure_selection, bench, method)


@pytest.mark.parametrize("uw", UWS)
def test_fig8d_approximation_ratio(benchmark, uw):
    bench = bench_for("uw", uw)

    def both():
        exact = measure_selection(bench, "exact")
        approx = measure_selection(bench, "approx")
        return 1.0 if exact.cardinality == 0 else approx.cardinality / exact.cardinality

    ratio = run_once(benchmark, both)
    benchmark.extra_info["approximation_ratio"] = ratio
    assert 0.0 <= ratio <= 1.0
