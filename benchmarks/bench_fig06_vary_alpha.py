"""Figure 6: effect of varying alpha (spatial vs textual preference).

Paper shape: the baseline's top-k cost falls as alpha grows (the tree
groups spatially), the joint cost stays nearly flat, and the
approximation ratio improves with alpha.
"""

import pytest

from repro.bench.harness import (
    measure_selection,
    measure_topk_baseline,
    measure_topk_joint,
)

from conftest import bench_for, run_once

ALPHAS = [0.1, 0.5, 0.9]


@pytest.mark.parametrize("alpha", ALPHAS)
def test_fig6ab_topk_baseline(benchmark, alpha):
    bench = bench_for("alpha", alpha)
    metrics = run_once(benchmark, measure_topk_baseline, bench)
    benchmark.extra_info["mrpu_ms"] = metrics.mrpu_ms
    benchmark.extra_info["miocpu"] = metrics.miocpu


@pytest.mark.parametrize("alpha", ALPHAS)
def test_fig6ab_topk_joint(benchmark, alpha):
    bench = bench_for("alpha", alpha)
    metrics = run_once(benchmark, measure_topk_joint, bench)
    benchmark.extra_info["mrpu_ms"] = metrics.mrpu_ms
    benchmark.extra_info["miocpu"] = metrics.miocpu


@pytest.mark.parametrize("alpha", [0.1, 0.9])
@pytest.mark.parametrize("method", ["baseline", "exact", "approx"])
def test_fig6c_selection(benchmark, alpha, method):
    bench = bench_for("alpha", alpha)
    run_once(benchmark, measure_selection, bench, method)


@pytest.mark.parametrize("alpha", ALPHAS)
def test_fig6d_approximation_ratio(benchmark, alpha):
    bench = bench_for("alpha", alpha)

    def both():
        exact = measure_selection(bench, "exact")
        approx = measure_selection(bench, "approx")
        return 1.0 if exact.cardinality == 0 else approx.cardinality / exact.cardinality

    ratio = run_once(benchmark, both)
    benchmark.extra_info["approximation_ratio"] = ratio
    assert 0.0 <= ratio <= 1.0
