"""Figure 12: effect of varying |U| (number of users).

Paper shape: the baseline's *total* top-k cost grows linearly with |U|
(one query per user); the joint pipeline's cost barely moves because
the super-user's MBR and keyword union change little.
"""

import pytest

from repro.bench.harness import (
    measure_selection,
    measure_topk_baseline,
    measure_topk_joint,
)

from conftest import bench_for, run_once

US = [25, 250, 1000]


@pytest.mark.parametrize("num_users", US)
def test_fig12ab_topk_baseline_total(benchmark, num_users):
    bench = bench_for("num_users", num_users)
    metrics = run_once(benchmark, measure_topk_baseline, bench)
    benchmark.extra_info["total_ms"] = metrics.total_ms
    benchmark.extra_info["total_io"] = metrics.total_io


@pytest.mark.parametrize("num_users", US)
def test_fig12ab_topk_joint_total(benchmark, num_users):
    bench = bench_for("num_users", num_users)
    metrics = run_once(benchmark, measure_topk_joint, bench)
    benchmark.extra_info["total_ms"] = metrics.total_ms
    benchmark.extra_info["total_io"] = metrics.total_io


@pytest.mark.parametrize("num_users", [25, 1000])
@pytest.mark.parametrize("method", ["baseline", "exact", "approx"])
def test_fig12c_selection(benchmark, num_users, method):
    bench = bench_for("num_users", num_users)
    run_once(benchmark, measure_selection, bench, method)


@pytest.mark.parametrize("num_users", US)
def test_fig12d_approximation_ratio(benchmark, num_users):
    bench = bench_for("num_users", num_users)

    def both():
        exact = measure_selection(bench, "exact")
        approx = measure_selection(bench, "approx")
        return 1.0 if exact.cardinality == 0 else approx.cardinality / exact.cardinality

    ratio = run_once(benchmark, both)
    benchmark.extra_info["approximation_ratio"] = ratio
    assert 0.0 <= ratio <= 1.0
