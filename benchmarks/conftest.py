"""Shared fixtures for the figure benchmarks.

Every benchmark module regenerates one paper figure/table.  The full
sweeps (all values, all measures, averaged seeds) live in
``python -m repro.bench.report``; the pytest-benchmark targets here time
the same pipelines on a representative subset of each sweep so that
``pytest benchmarks/ --benchmark-only`` stays minutes, not hours.  The
benchmark *names* encode the figure, the series (B/J/E/A), and the swept
value, so the pytest-benchmark output table reads like the paper's
series.

Scale note: ``BENCH_BASE`` shrinks the default cell (|O| = 1500,
|U| = 150) relative to the report defaults; both are scaled versions of
the paper's Table 5 (see DESIGN.md §3 and EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import build_workbench, clear_cache
from repro.bench.params import DEFAULTS, ExperimentConfig, config_for

#: Base experiment cell for the benchmarks (scaled-down Table 5 bolds).
BENCH_BASE = DEFAULTS.with_(num_objects=1500, num_users=150)

#: Sparse-user cell for Figure 15 (Section 7's own setting).
FIG15_BASE = BENCH_BASE.with_(
    num_objects=1500, area=40.0, alpha=0.9, num_locations=10, fanout=8
)

_cache: dict = {}


def bench_for(param: str | None = None, value=None, base: ExperimentConfig = BENCH_BASE):
    """Cached workbench for one (param, value) cell."""
    config = base if param is None else config_for(param, value, base)
    if config not in _cache:
        _cache[config] = build_workbench(config, cached=False)
    return _cache[config]


@pytest.fixture(scope="session", autouse=True)
def _clear_caches_at_end():
    yield
    _cache.clear()
    clear_cache()


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` under pytest-benchmark with cheap settings.

    The pipelines here take 0.1–5 s each; two rounds give a stable
    median without blowing up the wall clock of the whole suite.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=2, iterations=1,
                              warmup_rounds=0)
