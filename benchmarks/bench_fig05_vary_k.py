"""Figure 5: effect of varying k (Flickr-like, all three measures).

(a) MRPU of Baseline vs Joint top-k, (b) MIOCPU of the same, (c) runtime
of Baseline / Exact / Approx candidate selection, (d) approximation
ratio.  Paper shape: J beats B on both metrics for every measure, KO is
the costliest measure, A is orders faster than E, and the ratio rises
with k.
"""

import pytest

from repro.bench.harness import (
    measure_selection,
    measure_topk_baseline,
    measure_topk_joint,
)

from conftest import BENCH_BASE, bench_for, run_once

K_VALUES = [1, 10, 50]
MEASURES = ["LM", "TF", "KO"]


@pytest.mark.parametrize("k", K_VALUES)
@pytest.mark.parametrize("measure", MEASURES)
def test_fig5ab_topk_baseline(benchmark, k, measure):
    bench = bench_for("k", k, BENCH_BASE.with_(measure=measure))
    metrics = run_once(benchmark, measure_topk_baseline, bench)
    benchmark.extra_info["mrpu_ms"] = metrics.mrpu_ms
    benchmark.extra_info["miocpu"] = metrics.miocpu


@pytest.mark.parametrize("k", K_VALUES)
@pytest.mark.parametrize("measure", MEASURES)
def test_fig5ab_topk_joint(benchmark, k, measure):
    bench = bench_for("k", k, BENCH_BASE.with_(measure=measure))
    metrics = run_once(benchmark, measure_topk_joint, bench)
    benchmark.extra_info["mrpu_ms"] = metrics.mrpu_ms
    benchmark.extra_info["miocpu"] = metrics.miocpu


@pytest.mark.parametrize("k", [1, 50])
@pytest.mark.parametrize("method", ["baseline", "exact", "approx"])
def test_fig5c_selection(benchmark, k, method):
    bench = bench_for("k", k)
    metrics = run_once(benchmark, measure_selection, bench, method)
    benchmark.extra_info["cardinality"] = metrics.cardinality


@pytest.mark.parametrize("k", K_VALUES)
def test_fig5d_approximation_ratio(benchmark, k):
    """Timed together; the ratio lands in extra_info."""
    bench = bench_for("k", k)

    def both():
        exact = measure_selection(bench, "exact")
        approx = measure_selection(bench, "approx")
        return 1.0 if exact.cardinality == 0 else approx.cardinality / exact.cardinality

    ratio = run_once(benchmark, both)
    benchmark.extra_info["approximation_ratio"] = ratio
    assert 0.0 <= ratio <= 1.0
