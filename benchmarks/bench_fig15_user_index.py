"""Figure 15: users on disk under the MIUR-tree vs a flat user file.

Paper shape: the fraction of users whose top-k is never computed grows
with |U| (5–12.5% in the paper); total I/O of the indexed pipeline
tracks the un-indexed one.  The cell follows Section 7's own framing —
sparse users and spatially dominated ranking (see EXPERIMENTS.md).
"""

import pytest

from repro.bench.harness import measure_user_index

from conftest import FIG15_BASE, bench_for, run_once

US = [125, 500, 2000]


@pytest.mark.parametrize("num_users", US)
def test_fig15_user_index(benchmark, num_users):
    bench = bench_for("user_index_users", num_users, FIG15_BASE)
    unindexed_io, indexed_io, pruned_pct = run_once(
        benchmark, measure_user_index, bench
    )
    benchmark.extra_info["unindexed_io"] = unindexed_io
    benchmark.extra_info["indexed_io"] = indexed_io
    benchmark.extra_info["users_pruned_pct"] = pruned_pct
    assert 0.0 <= pruned_pct <= 100.0
