"""Micro-batching server: latency percentiles and throughput vs max_wait_ms.

Not a paper figure — this benchmarks the ``repro.serve`` subsystem.
``concurrency`` closed-loop clients each submit their share of a fixed
query pool through one :class:`MaxBRSTkNNServer`; the sweep varies the
micro-batch window ``max_wait_ms`` in {0, 2, 10} and reports p50/p95
per-query latency and sustained queries/sec.

Two per-query baselines anchor the numbers:

* ``sequential engine.query`` — the seed's serving model (every request
  pays the full cold query); the headline speedup is micro-batching vs
  this, expected well above 2x at concurrency 32;
* a ``max_batch=1`` server — the async stack without micro-batching
  (phase-1 memo still applies), isolating the batching win from the
  engine-level memo.

Run::

    python benchmarks/bench_server_latency.py            # full sweep
    python benchmarks/bench_server_latency.py --tiny     # CI smoke

Exits non-zero if any served result differs from a sequential
python-backend ``engine.query`` (built-in equivalence check), or if
micro-batching fails the >= 2x acceptance bar (full sweep only).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro import MaxBRSTkNNEngine, QueryOptions  # noqa: E402
from repro.bench.harness import build_workbench  # noqa: E402
from repro.bench.params import DEFAULTS  # noqa: E402
from repro.bench.metrics import percentile  # noqa: E402
from repro.datagen.users import generate_users, query_pool  # noqa: E402
from repro.serve import MaxBRSTkNNServer, ServerConfig  # noqa: E402


def make_queries(workload, config, count: int):
    return query_pool(
        workload, count, num_locations=config.num_locations, ws=config.ws,
        k=config.k, seed=config.seed, seed_stride=101,
    )


def run_server(engine, queries, options, max_batch, max_wait_ms, concurrency):
    """Closed-loop clients; returns (elapsed_s, latencies_s, stats, results)."""
    latencies = []
    results = [None] * len(queries)
    chunks = [
        list(enumerate(queries))[i::concurrency] for i in range(concurrency)
    ]
    config = ServerConfig(
        max_batch=max_batch, max_wait_ms=max_wait_ms, options=options
    )

    async def client(server, chunk):
        for idx, query in chunk:
            t0 = time.perf_counter()
            results[idx] = await server.submit(query)
            latencies.append(time.perf_counter() - t0)

    async def main():
        engine.clear_topk_cache()
        async with MaxBRSTkNNServer(engine, config) as server:
            t0 = time.perf_counter()
            await asyncio.gather(
                *(client(server, chunk) for chunk in chunks if chunk)
            )
            elapsed = time.perf_counter() - t0
            return elapsed, server.stats

    elapsed, stats = asyncio.run(main())
    return elapsed, sorted(latencies), stats, results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=DEFAULTS.num_objects)
    parser.add_argument("--users", type=int, default=DEFAULTS.num_users)
    parser.add_argument("--locations", type=int, default=DEFAULTS.num_locations)
    parser.add_argument("--k", type=int, default=DEFAULTS.k)
    parser.add_argument("--seed", type=int, default=DEFAULTS.seed)
    parser.add_argument("--backend", choices=["python", "numpy", "auto"],
                        default="auto")
    parser.add_argument("--concurrency", type=int, default=32)
    parser.add_argument("--queries", type=int, default=96,
                        help="total queries across all clients")
    parser.add_argument("--max-wait-sweep", type=float, nargs="+",
                        default=[0.0, 2.0, 10.0])
    parser.add_argument("--tiny", action="store_true",
                        help="smoke-test scale for CI")
    parser.add_argument("--no-verify", action="store_true")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write machine-readable results to PATH "
                             "(CI uploads these as artifacts)")
    args = parser.parse_args(argv)

    config = DEFAULTS.with_(
        num_objects=args.objects,
        num_users=args.users,
        num_locations=args.locations,
        k=args.k,
        seed=args.seed,
        backend=args.backend,
    )
    if args.tiny:
        config = config.with_(num_objects=300, num_users=40, num_locations=5)
        args.concurrency = 8
        args.queries = 16
        args.max_wait_sweep = [0.0, 2.0]

    print(f"dataset: {config.label()}  "
          f"(concurrency={args.concurrency}, queries={args.queries})", flush=True)
    bench = build_workbench(config, cached=False)
    engine = MaxBRSTkNNEngine(bench.dataset, fanout=config.fanout)
    workload = generate_users(
        bench.dataset.objects,
        num_users=config.num_users,
        keywords_per_user=config.ul,
        unique_keywords=config.uw,
        area_side=config.area,
        seed=config.seed,
    )
    queries = make_queries(workload, config, args.queries)
    options = QueryOptions(backend=args.backend)

    # Baseline 1: the seed's serving model — every request is a cold
    # sequential engine.query.
    t0 = time.perf_counter()
    for query in queries:
        engine.query(query, options)
    seq_elapsed = time.perf_counter() - t0
    seq_qps = len(queries) / seq_elapsed
    print(f"\n{'configuration':<38} {'q/s':>8} {'p50 ms':>8} {'p95 ms':>8} "
          f"{'avg batch':>10}")
    print(f"{'sequential engine.query (per-query)':<38} {seq_qps:>8.1f} "
          f"{1000 * seq_elapsed / len(queries):>8.1f} "
          f"{1000 * seq_elapsed / len(queries):>8.1f} {'1.0':>10}")

    # Baseline 2: the async stack without micro-batching.
    elapsed, lats, stats, _ = run_server(
        engine, queries, options, 1, 0.0, args.concurrency
    )
    print(f"{'server max_batch=1 (no batching)':<38} "
          f"{len(queries) / elapsed:>8.1f} "
          f"{1000 * percentile(lats, 0.5):>8.1f} "
          f"{1000 * percentile(lats, 0.95):>8.1f} "
          f"{stats.avg_batch_size:>10.1f}")

    # The sweep: micro-batching with increasing windows.
    best_qps = 0.0
    served = None
    sweep_rows = []
    for wait_ms in args.max_wait_sweep:
        elapsed, lats, stats, results = run_server(
            engine, queries, options, args.concurrency, wait_ms, args.concurrency
        )
        qps = len(queries) / elapsed
        best_qps = max(best_qps, qps)
        served = results
        sweep_rows.append(
            {
                "max_wait_ms": wait_ms,
                "queries_per_sec": qps,
                "p50_ms": 1000 * percentile(lats, 0.5),
                "p95_ms": 1000 * percentile(lats, 0.95),
                "avg_batch_size": stats.avg_batch_size,
            }
        )
        label = f"micro-batch max_wait_ms={wait_ms:g}"
        print(f"{label:<38} {qps:>8.1f} "
              f"{1000 * percentile(lats, 0.5):>8.1f} "
              f"{1000 * percentile(lats, 0.95):>8.1f} "
              f"{stats.avg_batch_size:>10.1f}")

    speedup = best_qps / seq_qps
    print(f"\nmicro-batching vs per-query sequential: {speedup:.2f}x queries/sec")

    if args.json:
        payload = {
            "benchmark": "server_latency",
            "dataset": config.label(),
            "concurrency": args.concurrency,
            "queries": len(queries),
            "sequential_queries_per_sec": seq_qps,
            "micro_batch_sweep": sweep_rows,
            "best_speedup_vs_sequential": speedup,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")

    if not args.no_verify:
        reference = QueryOptions(backend="python")
        mismatches = sum(
            1
            for query, result in zip(queries, served)
            if (
                result.location != (solo := engine.query(query, reference)).location
                or result.keywords != solo.keywords
                or result.brstknn != solo.brstknn
            )
        )
        if mismatches:
            print(f"EQUIVALENCE FAILURE: {mismatches} served results differ")
            return 1
        print(f"equivalence check: served == sequential on {len(queries)} queries")
    if not args.tiny and speedup < 2.0:
        print("ACCEPTANCE FAILURE: micro-batching speedup below 2x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
