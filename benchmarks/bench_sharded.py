"""Sharded scatter/gather serving: throughput vs shard count.

Not a paper figure — this benchmarks ``repro.serve.sharded``.  A fixed
query pool is answered in micro-batches (``--batch-size`` per flush,
the server's flush shape) through engines with shards ∈ ``--shards``
(default 1, 2, 4), each populated shard backed by its own fork-once
:class:`PersistentWorkerPool`.  Shard 1 is the single-engine baseline.

Every sweep's results are compared against a sequential single-engine
reference (the built-in equivalence assertion CI relies on): location,
keyword set and BRSTkNN set must match exactly — the sharded layer's
headline guarantee.

Honesty on 1-CPU hosts: scatter parallelism is *process* parallelism,
so a single-core container shows overhead, not speedup.  The bench
therefore also reports an Amdahl-style scaling model from the measured
phase split — per-shard scatter work (refine + shortlist, the part
that parallelizes) vs everything else (walk, merge, central search,
dispatch) — and the ≥ 1.5x acceptance gate applies only on hosts with
enough cores to express the parallelism (``os.cpu_count() >= 2``, full
run only).

``--mode indexed`` runs the same sweep through the MIUR pipeline: one
central root walk per flush (cross-k shared), per-query best-first
searches fanned out over the root search pool with I/O-charge ledgers;
the scatter column is 0 by design (MIUR pruning replaces the O(|U|)
refine), so the parallel share of the model is the search fan-out.

Run::

    python benchmarks/bench_sharded.py                  # full sweep
    python benchmarks/bench_sharded.py --tiny --shards 1 2   # CI smoke
    python benchmarks/bench_sharded.py --tiny --shards 2 --mode indexed
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro import EngineConfig, MaxBRSTkNNEngine, QueryOptions  # noqa: E402
from repro.bench.harness import build_workbench  # noqa: E402
from repro.bench.params import DEFAULTS  # noqa: E402
from repro.datagen.users import generate_users, query_pool  # noqa: E402
from repro.serve import ShardedEngine  # noqa: E402


def chunked(items, size):
    for i in range(0, len(items), size):
        yield items[i:i + size]


def run_engine(engine, queries, options, batch_size):
    """Answer the pool in flush-sized batches; returns (elapsed, results)."""
    engine.clear_topk_cache()
    results = []
    t0 = time.perf_counter()
    for chunk in chunked(queries, batch_size):
        results.extend(engine.query_batch(chunk, options))
    return time.perf_counter() - t0, results


def assert_equivalent(reference, results, label):
    mismatches = sum(
        1
        for a, b in zip(reference, results)
        if a.location != b.location
        or a.keywords != b.keywords
        or a.brstknn != b.brstknn
    )
    if mismatches:
        print(f"EQUIVALENCE FAILURE: {label}: {mismatches} results differ")
        return False
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=DEFAULTS.num_objects)
    parser.add_argument("--users", type=int, default=800)
    parser.add_argument("--locations", type=int, default=DEFAULTS.num_locations)
    parser.add_argument("--k", type=int, default=DEFAULTS.k)
    parser.add_argument("--seed", type=int, default=DEFAULTS.seed)
    parser.add_argument("--backend", choices=["python", "numpy", "auto"],
                        default="auto")
    parser.add_argument("--mode", choices=["joint", "indexed"], default="joint",
                        help="query pipeline; indexed shares one MIUR-root "
                             "walk per flush and fans the searches out")
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--partitioner", choices=["hash", "grid"], default="hash")
    parser.add_argument("--pool-workers", type=int, default=1,
                        help="workers per shard pool (0 = in-process scatter)")
    parser.add_argument("--queries", type=int, default=64)
    parser.add_argument("--batch-size", type=int, default=32,
                        help="queries per flush (the server's micro-batch)")
    parser.add_argument("--mixed-k", action="store_true",
                        help="alternate k and k//2 across the pool")
    parser.add_argument("--tiny", action="store_true",
                        help="smoke-test scale for CI")
    parser.add_argument("--json", metavar="PATH", default=None)
    args = parser.parse_args(argv)

    config = DEFAULTS.with_(
        num_objects=args.objects,
        num_users=args.users,
        num_locations=args.locations,
        k=args.k,
        seed=args.seed,
        backend=args.backend,
    )
    if args.tiny:
        config = config.with_(num_objects=300, num_users=60, num_locations=5, k=3)
        args.queries = 16
        args.batch_size = 8

    print(f"dataset: {config.label()}  (mode={args.mode}, "
          f"queries={args.queries}, "
          f"batch={args.batch_size}, partitioner={args.partitioner}, "
          f"pool_workers/shard={args.pool_workers}, cpus={os.cpu_count()})",
          flush=True)
    bench = build_workbench(config, cached=False)
    workload = generate_users(
        bench.dataset.objects,
        num_users=config.num_users,
        keywords_per_user=config.ul,
        unique_keywords=config.uw,
        area_side=config.area,
        seed=config.seed,
    )
    queries = query_pool(
        workload, args.queries, num_locations=config.num_locations,
        ws=config.ws, k=config.k, seed=config.seed, seed_stride=101,
    )
    if args.mixed_k:
        for i, q in enumerate(queries):
            if i % 2:
                q.k = max(1, config.k // 2)
    options = QueryOptions(mode=args.mode, backend=args.backend)
    index_users = args.mode == "indexed"

    # Sequential single-engine reference for the equivalence assertion.
    reference_engine = MaxBRSTkNNEngine(
        bench.dataset,
        EngineConfig(fanout=config.fanout, index_users=index_users),
    )
    ref_options = QueryOptions(mode=args.mode, backend="python")
    reference = [reference_engine.query(q, ref_options) for q in queries]

    print(f"\n{'configuration':<30} {'q/s':>8} {'total ms':>10} "
          f"{'scatter ms':>11} {'central ms':>11}")
    rows = []
    qps_by_shards = {}
    ok = True
    for num_shards in args.shards:
        ecfg = EngineConfig(
            fanout=config.fanout, num_shards=num_shards,
            partitioner=args.partitioner, index_users=index_users,
        )
        if num_shards == 1:
            engine = MaxBRSTkNNEngine(bench.dataset, ecfg)
            elapsed, results = run_engine(engine, queries, options, args.batch_size)
            scatter_s = 0.0
        else:
            engine = ShardedEngine(bench.dataset, ecfg)
            if args.pool_workers > 0:
                engine.start_pools(args.pool_workers)
            try:
                elapsed, results = run_engine(
                    engine, queries, options, args.batch_size
                )
            finally:
                engine.close_pools()
            scatter_s = sum(
                s["refine_ms"] + s["shortlist_ms"] for s in engine.shard_stats()
            ) / 1000.0
        qps = len(queries) / elapsed if elapsed > 0 else float("inf")
        qps_by_shards[num_shards] = qps
        label = f"shards={num_shards}"
        ok &= assert_equivalent(reference, results, label)
        print(f"{label:<30} {qps:>8.1f} {1000 * elapsed:>10.1f} "
              f"{1000 * scatter_s:>11.1f} "
              f"{1000 * max(0.0, elapsed - scatter_s):>11.1f}")
        rows.append(
            {
                "shards": num_shards,
                "queries_per_sec": qps,
                "total_ms": 1000 * elapsed,
                "scatter_work_ms": 1000 * scatter_s,
            }
        )

    base = min(args.shards)
    peak = max(args.shards)
    speedup = qps_by_shards[peak] / qps_by_shards[base]
    print(f"\nshards={peak} vs shards={base}: {speedup:.2f}x queries/sec")

    # Amdahl-style scaling model.  Per-shard wall clocks measured under
    # pool contention over-count (a worker's window includes slices
    # where other processes hold the CPU), so the phase split comes
    # from a dedicated *in-process* pass at peak shards: there the
    # per-shard refine+shortlist times and the per-query central-search
    # times are true single-core work.  Both fan out under pools (the
    # searches over the root search pool), so the parallel share is
    # their sum; the serial remainder — the one tree walk, the merges,
    # dispatch — is what sharding cannot touch.
    model = None
    if peak > 1:
        ip_engine = ShardedEngine(
            bench.dataset,
            EngineConfig(fanout=config.fanout, num_shards=peak,
                         partitioner=args.partitioner,
                         index_users=index_users),
        )
        ip_elapsed, ip_results = run_engine(
            ip_engine, queries, options, args.batch_size
        )
        ok &= assert_equivalent(reference, ip_results, f"shards={peak} in-process")
        ip_scatter = sum(
            s["refine_ms"] + s["shortlist_ms"] for s in ip_engine.shard_stats()
        ) / 1000.0
        ip_search = ip_engine.gather_stats()["search_ms"] / 1000.0
        ip_parallel = min(ip_elapsed, ip_scatter + ip_search)
        parallel = ip_parallel / ip_elapsed if ip_elapsed > 0 else 0.0
        serial_s = max(0.0, ip_elapsed - ip_parallel)
        modeled_s = serial_s + ip_parallel / peak
        modeled_qps = len(queries) / modeled_s if modeled_s > 0 else float("inf")
        # Name the comparison honestly: "vs single" only when a real
        # 1-shard run is in the sweep; otherwise vs the smallest config.
        base_label = "the single engine" if base == 1 else f"shards={base}"
        speedup_key = (
            "modeled_speedup_vs_single" if base == 1
            else "modeled_speedup_vs_base"
        )
        model = {
            "in_process_total_ms": 1000 * ip_elapsed,
            "scatter_work_ms": 1000 * ip_scatter,
            "central_search_ms": 1000 * ip_search,
            "parallel_fraction": parallel,
            "modeled_queries_per_sec": modeled_qps,
            speedup_key: modeled_qps / qps_by_shards[base],
        }
        print(f"scaling model (in-process pass, no pool contention): "
              f"parallelizable work (scatter {1000 * ip_scatter:.0f} ms + "
              f"searches {1000 * ip_search:.0f} ms) is {100 * parallel:.0f}% "
              f"of {1000 * ip_elapsed:.0f} ms wall at shards={peak}; with "
              f"{peak} real cores that projects {modeled_qps:.1f} q/s = "
              f"{model[speedup_key]:.2f}x {base_label} "
              f"(measured on {os.cpu_count()} CPU(s))")

    if args.json:
        payload = {
            "benchmark": "sharded_scatter_gather",
            "mode": args.mode,
            "dataset": config.label(),
            "partitioner": args.partitioner,
            "pool_workers_per_shard": args.pool_workers,
            "queries": len(queries),
            "batch_size": args.batch_size,
            "cpus": os.cpu_count(),
            "sweep": rows,
            "speedup_peak_vs_base": speedup,
            "scaling_model": model,
            "equivalent_to_single_engine": ok,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")

    if not ok:
        return 1
    print(f"equivalence check: sharded == single-engine sequential on "
          f"{len(queries)} queries x {len(args.shards)} configurations")
    multi_core = (os.cpu_count() or 1) >= 2
    if (not args.tiny and peak >= 4 and peak != base and multi_core
            and speedup < 1.5):
        print("ACCEPTANCE FAILURE: sharded speedup below 1.5x on a "
              "multi-core host")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
