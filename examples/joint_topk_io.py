"""Demonstrate the joint top-k's I/O sharing (Section 5, of independent
interest beyond the MaxBRSTkNN query).

Computes the top-k spatial-textual objects of a whole user group two
ways — one best-first query per user (the Cong et al. baseline) versus
one shared MIR-tree traversal for the super-user followed by per-user
refinement — and reports the runtime and simulated-I/O gap, plus a
verification that both produce identical thresholds.

Run:  python examples/joint_topk_io.py
"""

import time

from repro import Dataset, MaxBRSTkNNEngine
from repro.datagen import flickr_like, generate_users


def main() -> None:
    objects, vocab = flickr_like(num_objects=4000, seed=3)
    workload = generate_users(
        objects, num_users=500, keywords_per_user=3, unique_keywords=20, seed=3
    )
    dataset = Dataset(objects, workload.users, relevance="LM", alpha=0.5,
                      vocabulary=vocab)
    engine = MaxBRSTkNNEngine(dataset)
    k = 10

    engine.reset_io()
    t0 = time.perf_counter()
    baseline = engine.topk_baseline(k)
    t_baseline = time.perf_counter() - t0
    io_baseline = engine.io.snapshot()

    engine.reset_io()
    t0 = time.perf_counter()
    joint = engine.topk_joint(k)
    t_joint = time.perf_counter() - t0
    io_joint = engine.io.snapshot()

    mismatches = sum(
        1
        for uid in baseline
        if abs(baseline[uid].kth_score - joint[uid].kth_score) > 1e-9
    )

    n = len(dataset.users)
    print(f"top-{k} for {n} users over {len(objects)} objects\n")
    print(f"{'':24}{'baseline':>12}{'joint':>12}{'gain':>8}")
    print(f"{'runtime (ms)':24}{1000 * t_baseline:12.1f}{1000 * t_joint:12.1f}"
          f"{t_baseline / t_joint:7.1f}x")
    print(f"{'node-visit I/Os':24}{io_baseline.node_visits:12d}"
          f"{io_joint.node_visits:12d}"
          f"{io_baseline.node_visits / max(1, io_joint.node_visits):7.1f}x")
    print(f"{'inverted-list I/Os':24}{io_baseline.invfile_blocks:12d}"
          f"{io_joint.invfile_blocks:12d}"
          f"{io_baseline.invfile_blocks / max(1, io_joint.invfile_blocks):7.1f}x")
    print(f"{'MRPU (ms/user)':24}{1000 * t_baseline / n:12.3f}"
          f"{1000 * t_joint / n:12.3f}")
    print(f"{'MIOCPU (I/O per user)':24}{io_baseline.total / n:12.2f}"
          f"{io_joint.total / n:12.2f}")
    print(f"\nthreshold mismatches between the two methods: {mismatches}")


if __name__ == "__main__":
    main()
