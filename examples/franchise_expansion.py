"""Extensions walk-through: franchise expansion planning.

A franchise wants to open several outlets at once.  Three extension
features of the library beyond the paper's single-placement query:

1. **ℓ-best placements** — a ranked shortlist of lots + menus to hand
   to a human decision maker;
2. **collective placement** — greedily choose m outlets so the number
   of customers won by *at least one* outlet is maximized;
3. **index persistence** — serialize the MIR-tree, reload it, and show
   the reloaded index answers identically (e.g. plan on a laptop,
   deploy the image to a server).

Run:  python examples/franchise_expansion.py
"""

from repro import Dataset, MaxBRSTkNNEngine, MaxBRSTkNNQuery
from repro.core.extensions import collective_placement, top_placements
from repro.core.joint_topk import joint_topk, joint_traversal
from repro.datagen import candidate_locations, flickr_like, generate_users
from repro.storage.serde import deserialize_irtree, serialize_irtree


def main() -> None:
    objects, vocab = flickr_like(num_objects=1500, seed=17)
    workload = generate_users(
        objects, num_users=150, keywords_per_user=3, unique_keywords=15, seed=17
    )
    candidate_locations(workload, num_locations=12, seed=17)
    dataset = Dataset(objects, workload.users, relevance="LM", alpha=0.5,
                      vocabulary=vocab)
    engine = MaxBRSTkNNEngine(dataset)

    query = MaxBRSTkNNQuery(
        ox=workload.query_object(),
        locations=workload.locations,
        keywords=workload.candidate_keywords,
        ws=2,
        k=10,
    )

    # Thresholds once, reused by every extension call.
    traversal = joint_traversal(engine.object_tree, dataset, query.k)
    topk = joint_topk(engine.object_tree, dataset, query.k)
    rsk = {uid: r.kth_score for uid, r in topk.items()}

    print("=== 1. Ranked shortlist (l-best placements) ===")
    shortlist = top_placements(
        dataset, query, rsk, limit=3, rsk_group=traversal.rsk_group
    )
    for rank, p in enumerate(shortlist, 1):
        tags = [vocab.term_of(t) for t in sorted(p.keywords)]
        print(f"  #{rank}: lot ({p.location.x:.2f}, {p.location.y:.2f}) "
              f"menu {tags} wins {p.cardinality} customers")

    print("\n=== 2. Opening 3 outlets collectively ===")
    outlets, covered = collective_placement(
        dataset, query, rsk, num_objects=3, rsk_group=traversal.rsk_group
    )
    for i, p in enumerate(outlets, 1):
        print(f"  outlet {i}: ({p.location.x:.2f}, {p.location.y:.2f}) "
              f"adds {p.cardinality} new customers")
    single = shortlist[0].cardinality if shortlist else 0
    print(f"  one outlet wins {single} customers; "
          f"three outlets together win {len(covered)}")

    print("\n=== 3. Index persistence round-trip ===")
    image = serialize_irtree(engine.object_tree)
    reloaded = deserialize_irtree(image, dataset.relevance)
    topk2 = joint_topk(reloaded, dataset, query.k)
    identical = all(
        topk[uid].kth_score == topk2[uid].kth_score for uid in topk
    )
    print(f"  image size: {len(image) / 1024:.1f} KiB for "
          f"{len(objects)} objects "
          f"({engine.object_tree.rtree.node_count()} nodes)")
    print(f"  reloaded index answers identically: {identical}")


if __name__ == "__main__":
    main()
