"""Serve concurrent MaxBRSTkNN queries through the micro-batching server.

Simulates 32 independent clients hitting the service at once — e.g. an
ad-placement dashboard where every advertiser asks "where should my ad
go?" simultaneously.  Each client just awaits ``server.submit(query)``;
the server transparently collects the burst into micro-batches, shares
the expensive query-independent top-k phase across them through
``query_batch``, and resolves every client's future with a result
identical to a standalone ``engine.query`` call.

Run:  python examples/async_serving.py
"""

import asyncio
import sys
import time
from os.path import abspath, dirname, join

sys.path.insert(0, join(dirname(dirname(abspath(__file__))), "src"))

from repro import Dataset, MaxBRSTkNNEngine, QueryOptions
from repro.datagen import flickr_like, generate_users, query_pool
from repro.serve import MaxBRSTkNNServer, ServerConfig

NUM_CLIENTS = 32


def build_world():
    objects, vocab = flickr_like(num_objects=1500, seed=3)
    workload = generate_users(objects, num_users=150, unique_keywords=15, seed=3)
    dataset = Dataset(objects, workload.users, relevance="LM", alpha=0.5,
                      vocabulary=vocab)
    queries = query_pool(
        workload, NUM_CLIENTS, num_locations=10, ws=2, k=10, seed=100
    )
    return dataset, queries


async def client(server, i, query):
    t0 = time.perf_counter()
    result = await server.submit(query)
    latency = 1000 * (time.perf_counter() - t0)
    return f"client {i:2d}: |BRSTkNN|={result.cardinality:2d}  ({latency:6.1f} ms)"


async def main():
    dataset, queries = build_world()
    engine = MaxBRSTkNNEngine(dataset)
    config = ServerConfig(
        max_batch=NUM_CLIENTS,
        max_wait_ms=2.0,
        options=QueryOptions(method="approx", backend="auto"),
    )
    t0 = time.perf_counter()
    async with MaxBRSTkNNServer(engine, config) as server:
        lines = await asyncio.gather(
            *(client(server, i, q) for i, q in enumerate(queries))
        )
        stats = server.stats.snapshot()
    elapsed = time.perf_counter() - t0

    for line in lines[:8]:
        print(line)
    print(f"... and {NUM_CLIENTS - 8} more clients")
    print()
    print(f"{NUM_CLIENTS} concurrent clients served in {1000 * elapsed:.1f} ms "
          f"({NUM_CLIENTS / elapsed:.0f} queries/sec)")
    print(f"server stats: {stats}")


if __name__ == "__main__":
    asyncio.run(main())
