"""The paper's motivating Example 1: social-media advertisement targeting.

Each user of a platform is shown only the k advertisements most
relevant to their location and interests.  An advertiser must choose
(a) which city region to geo-target and (b) which <= ws interest tags
to attach to the ad, so it surfaces in the ad slots of the maximum
number of users, against a large inventory of competing ads.

This example also demonstrates the indexed-users mode (Section 7):
with many platform users, the MIUR-tree avoids even computing the
threshold of users no placement can win.

Run:  python examples/ad_placement.py
"""

import time

from repro import Dataset, EngineConfig, MaxBRSTkNNEngine, MaxBRSTkNNQuery, QueryOptions
from repro.datagen import candidate_locations, flickr_like, generate_users


def main() -> None:
    # Competing ad inventory: ~3000 ads with tags, clustered downtown.
    ads, vocab = flickr_like(num_objects=3000, vocab_size=1500, seed=42)

    # Platform users, spread over a wide metro area (sparse).
    workload = generate_users(
        ads,
        num_users=800,
        keywords_per_user=3,
        unique_keywords=25,
        area_side=40.0,
        seed=42,
    )
    candidate_locations(workload, num_locations=10, seed=42)

    # Spatially dominated ranking: geo-targeting matters most (alpha .9),
    # each user sees their top-5 ads.
    dataset = Dataset(ads, workload.users, relevance="LM", alpha=0.9,
                      vocabulary=vocab)
    engine = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=8, index_users=True))

    query = MaxBRSTkNNQuery(
        ox=workload.query_object(),
        locations=workload.locations,
        keywords=workload.candidate_keywords,
        ws=3,
        k=5,
    )

    t0 = time.perf_counter()
    flat = engine.query(query, QueryOptions(method="approx", mode="joint"))
    t_flat = time.perf_counter() - t0

    t0 = time.perf_counter()
    indexed = engine.query(query, QueryOptions(method="approx", mode="indexed"))
    t_indexed = time.perf_counter() - t0

    print(f"Users on platform: {len(dataset.users)}, competing ads: {len(ads)}")
    print()
    print(f"Flat mode    ({t_flat * 1000:7.1f} ms): {flat.summary()}")
    print(f"Indexed mode ({t_indexed * 1000:7.1f} ms): {indexed.summary()}")
    print()
    pruned = indexed.stats.users_pruned
    print(
        f"MIUR-tree pruning: top-k thresholds were never computed for "
        f"{pruned} of {indexed.stats.users_total} users "
        f"({indexed.stats.users_pruned_pct:.1f}% pruned)"
    )
    tags = [vocab.term_of(t) for t in sorted(indexed.keywords)]
    print(f"Ad copy should carry the tags: {tags}")
    print(
        f"The ad then appears in the top-{query.k} slots of "
        f"{indexed.cardinality} users."
    )


if __name__ == "__main__":
    main()
