"""The paper's motivating Example 2: open a restaurant, pick the menu.

A service provider wants to open a new restaurant and decide which
single menu item to advertise so the restaurant becomes a top-1
spatial-textual choice for as many customers as possible, given the
existing competition.  This script reconstructs the Figure 1 scenario
with human-readable keywords and walks through what the engine decides
and why.

Run:  python examples/restaurant_menu.py
"""

from repro import (
    Dataset,
    EngineConfig,
    MaxBRSTkNNEngine,
    MaxBRSTkNNQuery,
    Point,
    QueryOptions,
    STObject,
    User,
)
from repro.text.vocabulary import Vocabulary


def main() -> None:
    vocab = Vocabulary()
    sushi, seafood, noodles = vocab.add_all(["sushi", "seafood", "noodles"])

    # Existing restaurants (the competition).
    competitors = [
        STObject(0, Point(8.0, 6.0), {sushi: 1}),    # o1: sushi place
        STObject(1, Point(6.0, 1.0), {noodles: 1}),  # o2: noodle bar
    ]

    # Customers with their locations and tastes.
    customers = [
        User(0, Point(1.0, 6.0), {sushi: 1, seafood: 1}),   # u1
        User(1, Point(2.0, 5.0), {sushi: 1}),               # u2
        User(2, Point(1.5, 3.5), {sushi: 1, noodles: 1}),   # u3
        User(3, Point(5.5, 1.5), {noodles: 1}),             # u4
    ]

    dataset = Dataset(competitors, customers, relevance="KO", alpha=0.5,
                      vocabulary=vocab)
    engine = MaxBRSTkNNEngine(dataset, EngineConfig(fanout=4))

    # Three lots are available; one menu item may be advertised (ws=1);
    # the goal is to be some customer's *top-1* restaurant (k=1).
    lots = [Point(1.5, 5.0), Point(7.0, 5.0), Point(4.0, 0.5)]
    query = MaxBRSTkNNQuery(
        ox=STObject(item_id=99, location=lots[0], terms={}),
        locations=lots,
        keywords=[sushi, seafood, noodles],
        ws=1,
        k=1,
    )

    result = engine.query(query, QueryOptions(method="exact"))

    print("Candidate lots:", [(p.x, p.y) for p in lots])
    print("Menu choices:  ", vocab.decode([sushi, seafood, noodles]))
    print()
    print("Best placement:", result.summary())
    print("Menu decodes to:", [vocab.term_of(t) for t in sorted(result.keywords)])
    print("Customers won: ", sorted(f"u{uid + 1}" for uid in result.brstknn))
    print()
    print("Per-customer view (their current top-1 threshold vs the new "
          "restaurant's score):")
    topk = engine.topk_joint(1)
    for u in customers:
        threshold = topk[u.item_id].kth_score
        doc = dict(result.keywords and {t: 1 for t in result.keywords} or {})
        score = dataset.sts_parts(result.location, doc, u)
        won = "WON " if u.item_id in result.brstknn else "lost"
        print(f"  u{u.item_id + 1}: threshold {threshold:.3f}  "
              f"new score {score:.3f}  -> {won}")


if __name__ == "__main__":
    main()
