"""Quickstart: answer a MaxBRSTkNN query end to end in ~40 lines.

Generates a Flickr-like collection, derives a user workload with the
paper's Section 8 protocol, builds the engine (MIR-tree + MIUR-tree),
and asks: where should a new object go, and which keywords should it
carry, to enter the spatial-textual top-10 of the most users?

Run:  python examples/quickstart.py
"""

from repro import Dataset, MaxBRSTkNNEngine, MaxBRSTkNNQuery, QueryOptions
from repro.datagen import candidate_locations, flickr_like, generate_users


def main() -> None:
    # 1. A spatial-textual object collection (stands in for Flickr).
    objects, vocab = flickr_like(num_objects=2000, seed=7)

    # 2. Users drawn from a 5x5 window, 3 keywords each from a pooled
    #    vocabulary of 20 — the pool doubles as the candidate keywords.
    workload = generate_users(
        objects, num_users=200, keywords_per_user=3, unique_keywords=20, seed=7
    )
    candidate_locations(workload, num_locations=20, seed=7)

    # 3. Dataset = objects + users + ranking function (Eq. 1).
    dataset = Dataset(objects, workload.users, relevance="LM", alpha=0.5,
                      vocabulary=vocab)
    engine = MaxBRSTkNNEngine(dataset)

    # 4. The query: place ox with at most 2 extra keywords, k = 10.
    query = MaxBRSTkNNQuery(
        ox=workload.query_object(),
        locations=workload.locations,
        keywords=workload.candidate_keywords,
        ws=2,
        k=10,
    )

    approx = engine.query(query, QueryOptions(method="approx"))
    exact = engine.query(query, QueryOptions(method="exact"))

    print("Approximate:", approx.summary())
    print("Exact:      ", exact.summary())
    ratio = approx.cardinality / exact.cardinality if exact.cardinality else 1.0
    print(f"Approximation ratio: {ratio:.3f}")
    print(f"Chosen keywords decode to: "
          f"{[vocab.term_of(t) for t in sorted(exact.keywords)]}")
    print(f"Simulated I/O so far: {engine.io.total} "
          f"({engine.io.node_visits} node visits, "
          f"{engine.io.invfile_blocks} inverted-list blocks)")


if __name__ == "__main__":
    main()
